"""The quorum failure detector ``Sigma`` (§3, from [15]).

``Sigma`` returns non-empty process sets satisfying:

* *Intersection*: any two samples, at any processes and times, intersect;
* *Liveness*: at every correct process, samples are eventually contained
  in the correct processes.

The oracle implementation returns the alive members of its scope, which
satisfies both properties whenever the scope contains a correct process
(every sample then contains ``Correct ∩ P``).  When the whole scope is
faulty, Liveness is vacuous (restricted to ``F ∩ P`` there is no correct
process) and the oracle pins its output to the full scope so Intersection
still holds.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, FrozenSet

from repro.detectors.base import OracleDetector
from repro.model.errors import DetectorError
from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessId, ProcessSet, pset


class SigmaOracle(OracleDetector):
    """Oracle-backed ``Sigma_P``.

    Attributes:
        scope: the process set ``P`` the detector is restricted to;
            ``Sigma_P`` over the full system is obtained by passing all
            processes.
    """

    kind = "Sigma"

    def __init__(self, pattern: FailurePattern, scope: ProcessSet) -> None:
        super().__init__(pattern)
        if not scope:
            raise DetectorError("Sigma scope must be non-empty")
        self.scope = pset(scope)
        self._scope_correct = pset(
            p for p in self.scope if pattern.is_correct(p)
        )
        # The sample is a pure function of which scope members are alive,
        # which only changes at the scope's crash *and* recovery
        # instants — one cached sample per inter-change interval (a
        # single constant sample on failure-free patterns, where kernel
        # runs issue one query per process per round).  Recovery makes
        # the alive set non-monotone, but each epoch is still constant.
        self._crash_instants = sorted(
            {
                when
                for q, when in pattern.crash_times.items()
                if q in self.scope
            }
            | {
                when
                for q, when in pattern.recovery_times.items()
                if q in self.scope
            }
        )
        self._samples: Dict[int, FrozenSet[ProcessId]] = {}

    def query(self, p: ProcessId, t: Time) -> FrozenSet[ProcessId]:
        """A quorum of ``scope`` at time ``t``.

        The caller need not belong to the scope: the restriction semantics
        (return ``⊥`` outside ``P``) is layered on by
        :class:`repro.detectors.restriction.Restricted`.
        """
        if not self._scope_correct:
            # Entire scope eventually crashes: Liveness is vacuous, keep
            # Intersection by answering the constant full scope.
            return self.scope
        epoch = bisect_right(self._crash_instants, t)
        sample = self._samples.get(epoch)
        if sample is None:
            alive = pset(q for q in self.scope if self.pattern.is_alive(q, t))
            # Union in the correct members: on crash-stop patterns this
            # is a no-op (every correct member is alive), and under
            # crash–recovery it keeps Intersection — a temporarily-down
            # recovering member stays in every sample, so any two
            # samples intersect on ``Correct ∩ P``.  Operations quoting
            # such a member stall, admissibly, until its rejoin.
            sample = pset(alive | self._scope_correct)
            self._samples[epoch] = sample
        return sample
