"""The candidate failure detector ``mu`` (§3).

``mu_G = (∧_{g,h∈G} Sigma_{g∩h}) ∧ (∧_{g∈G} Omega_g) ∧ gamma``

Note that the first conjunct ranges over *all* pairs, including ``g = h``:
``Sigma_{g∩g} = Sigma_g``, which combined with ``Omega_g`` makes consensus
wait-free solvable inside every destination group (§4).

:class:`Mu` is a facade bundling the oracle components with convenient
accessors; it also exposes itself as a plain :class:`Conjunction` for the
comparison harness.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.detectors.base import BOTTOM, FailureDetector
from repro.detectors.cyclicity import GammaOracle, gamma_groups
from repro.detectors.leader import OmegaOracle
from repro.detectors.quorum import SigmaOracle
from repro.detectors.restriction import Conjunction, Restricted
from repro.groups.topology import Group, GroupFamily, GroupTopology
from repro.model.errors import DetectorError
from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessId, ProcessSet


class Mu(FailureDetector):
    """Oracle-backed candidate ``mu_G``.

    Attributes:
        pattern: the run's failure pattern.
        topology: the destination groups ``G``.
        gamma_lag: detection lag of the gamma component.
        omega_stabilization: stabilization time of the Omega components.
    """

    kind = "mu"

    def __init__(
        self,
        pattern: FailurePattern,
        topology: GroupTopology,
        gamma_lag: Time = 0,
        omega_stabilization: Optional[Time] = None,
        gamma_scope: str = "group",
    ) -> None:
        super().__init__()
        if gamma_scope not in ("group", "process"):
            raise DetectorError(f"unknown gamma_scope {gamma_scope!r}")
        self.pattern = pattern
        self.topology = topology
        #: How ``gamma(g)`` partner sets (and Algorithm 1's consensus
        #: family keys) are scoped.  ``"group"`` — the default, and the
        #: correct wiring — derives them uniformly from ``F(g)``, so all
        #: members of ``g`` gate commit on the same partners and share
        #: one ``CONS_{m,f}`` instance.  ``"process"`` reproduces the
        #: pre-fix §3-literal ``F(p)`` scoping, kept only so the golden
        #: runtime suite can replay its frozen pre-fix traces (see
        #: ROADMAP item 6 and tests/runtime/_scenarios.py).
        self.gamma_scope = gamma_scope
        self._sigmas: Dict[FrozenSet[ProcessId], SigmaOracle] = {}
        self._omegas: Dict[Group, OmegaOracle] = {}
        for g in topology.groups:
            restricted = pattern.restricted_to(g.members)
            self._omegas[g] = OmegaOracle(
                restricted, g.members, stabilization_time=omega_stabilization
            )
            self._sigmas[g.members] = SigmaOracle(restricted, g.members)
        for g, h in topology.intersecting_pairs():
            shared = g.intersection(h)
            if shared not in self._sigmas:
                self._sigmas[shared] = SigmaOracle(
                    pattern.restricted_to(shared), shared
                )
        self._gamma = GammaOracle(pattern, topology, detection_lag=gamma_lag)
        # ``gamma(g)`` partner sets are constant within one gamma
        # exclusion epoch; Algorithm 1 recomputes them on every commit /
        # stable scan, so this cache carries the engine's hottest path.
        # Keyed by (g, epoch) under group scoping, (p, g, epoch) under
        # the legacy process scoping.
        self._partner_cache: Dict[tuple, Tuple[Group, ...]] = {}

    # -- Component accessors (the API Algorithm 1 consumes) ---------------

    def sigma(self, g: Group, h: Group) -> SigmaOracle:
        """``Sigma_{g∩h}`` (``Sigma_g`` when ``g == h``)."""
        shared = g.intersection(h)
        try:
            return self._sigmas[shared]
        except KeyError:
            raise DetectorError(
                f"{g.name} and {h.name} do not intersect"
            ) from None

    def omega(self, g: Group) -> OmegaOracle:
        """``Omega_g``."""
        try:
            return self._omegas[g]
        except KeyError:
            raise DetectorError(f"unknown group {g.name}") from None

    @property
    def gamma(self) -> GammaOracle:
        return self._gamma

    def delay_omega(self, group_name: Optional[str], until: Time) -> None:
        """Raise the stabilization time of ``Omega_g`` to at least ``until``.

        Used by the fault layer's ``omega_late`` injector: before the new
        stabilization time the oracle keeps reporting the smallest *alive*
        scope member (which may be faulty and may change) — exactly the
        arbitrary-finite-prefix misbehaviour the detector definition
        allows.  ``group_name=None`` delays every group's oracle.  Callers
        relying on :meth:`omega_settle_time` must re-read it afterwards.
        """
        for g, omega in self._omegas.items():
            if group_name is None or g.name == group_name:
                omega.stabilization_time = max(omega.stabilization_time, until)

    def omega_settle_time(self) -> Time:
        """The latest stabilization time across the ``Omega_g`` components.

        From this time on every group's leader oracle reports its
        eventual leader; it is part of the engine's detector settle
        horizon (liveness of the §4.3 consensus construction is only
        guaranteed after Omega stabilizes).
        """
        return max(
            (o.stabilization_time for o in self._omegas.values()), default=0
        )

    def gamma_partners(self, p: ProcessId, t: Time, g: Group) -> Tuple[Group, ...]:
        """``gamma(g)`` at ``t`` (§3 derived notation), group-uniform.

        Derived from the oracle's exclusion state over ``F(g)`` rather
        than from ``p``'s own sample over ``F(p)``: every member of ``g``
        must gate commit/stabilize on the *same* partner set, or a
        member carrying no intersection of a live family of ``g`` sees
        no partners, commits early, and decides a stale ordering
        position for everyone (ROADMAP item 6).  ``p`` stays in the
        signature for API stability; under the default ``"group"`` scope
        the answer no longer depends on it (``gamma_scope="process"``
        replays the legacy per-process view for the golden suite).
        """
        if self.gamma_scope == "process":
            key: tuple = (p, g, self._gamma.epoch(t))
            partners = self._partner_cache.get(key)
            if partners is None:
                partners = gamma_groups(self._gamma.query(p, t), g)
                self._partner_cache[key] = partners
            return partners
        key = (g, self._gamma.epoch(t))
        partners = self._partner_cache.get(key)
        if partners is None:
            partners = gamma_groups(
                self._gamma.trusted_families_of_group(g, t), g
            )
            self._partner_cache[key] = partners
        return partners

    # -- FailureDetector interface ----------------------------------------

    def query(self, p: ProcessId, t: Time) -> Dict[str, object]:
        """The full conjunction sample, keyed by component name."""
        sample: Dict[str, object] = {}
        for members, sigma in self._sigmas.items():
            key = "sigma:" + ",".join(q.name for q in sorted(members))
            sample[key] = sigma.query(p, t) if p in members else BOTTOM
        for g, omega in self._omegas.items():
            sample[f"omega:{g.name}"] = (
                omega.query(p, t) if p in g.members else BOTTOM
            )
        sample["gamma"] = self._gamma.query(p, t)
        return sample

    def as_conjunction(self) -> Conjunction:
        """This detector as a plain named conjunction (for comparisons)."""
        components: Dict[str, FailureDetector] = {}
        for members, sigma in self._sigmas.items():
            key = "sigma:" + ",".join(q.name for q in sorted(members))
            components[key] = Restricted(sigma, members)
        for g, omega in self._omegas.items():
            components[f"omega:{g.name}"] = Restricted(omega, g.members)
        components["gamma"] = self._gamma
        return Conjunction(components)
