"""ABD atomic registers from ``Sigma`` (§4, first observation).

The paper's sufficiency argument starts from "``Sigma_g`` permits to build
shared atomic registers in ``g``" [15].  This module is that construction:
a multi-writer multi-reader register over the step-level kernel, with the
classic two-phase ABD protocol generalized to dynamic quorums — a phase
completes when the set of responders *covers a current ``Sigma`` sample*,
which is exactly how the quorum detector abstracts "enough processes
answered".

Both operations are two-phase:

* ``read``: query phase collects (timestamp, value) pairs from a quorum,
  then a write-back phase propagates the freshest pair to a quorum
  (ensuring reads are linearizable);
* ``write``: query phase learns the highest timestamp, then the update
  phase installs ``(ts+1, pid)`` at a quorum.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.model.messages import Datagram
from repro.model.processes import ProcessId, ProcessSet
from repro.sim.kernel import Automaton, Context

#: A logical timestamp: (counter, writer index) — totally ordered.
Timestamp = Tuple[int, int]

ZERO: Timestamp = (0, 0)


@dataclass
class _PendingOp:
    """One in-flight read or write at its invoking process."""

    op_id: int
    kind: str  # "read" | "write"
    value: Any = None
    phase: str = "query"  # "query" -> "update"
    responders: Set[ProcessId] = field(default_factory=set)
    best_ts: Timestamp = ZERO
    best_value: Any = None


class RegisterAutomaton(Automaton):
    """Per-process code of the ABD register.

    Every process is simultaneously a client (its ``invoke_*`` methods
    enqueue operations) and a replica (it answers QUERY/UPDATE messages).
    """

    def __init__(self, pid: ProcessId, scope: ProcessSet) -> None:
        self.pid = pid
        self.scope = sorted(scope)
        self.stored_ts: Timestamp = ZERO
        self.stored_value: Any = None
        self._ops: Dict[int, _PendingOp] = {}
        self._op_counter = itertools.count(1)
        self.completed: List[Tuple[int, str, Any]] = []

    # -- Client interface ---------------------------------------------------------

    def invoke_read(self) -> int:
        op = _PendingOp(op_id=next(self._op_counter), kind="read")
        self._ops[op.op_id] = op
        return op.op_id

    def invoke_write(self, value: Any) -> int:
        op = _PendingOp(
            op_id=next(self._op_counter), kind="write", value=value
        )
        self._ops[op.op_id] = op
        return op.op_id

    def result_of(self, op_id: int) -> Optional[Tuple[str, Any]]:
        for done_id, kind, value in self.completed:
            if done_id == op_id:
                return (kind, value)
        return None

    # -- Replica + client steps -----------------------------------------------------

    def on_step(self, ctx: Context, datagram: Optional[Datagram]) -> None:
        if datagram is not None:
            self._handle(ctx, datagram)
        self._progress(ctx)

    def _handle(self, ctx: Context, datagram: Datagram) -> None:
        tag, body = datagram.tag, datagram.body
        if tag == "ABD_QUERY":
            (op_key,) = body
            ctx.send(
                datagram.src,
                "ABD_QUERY_ACK",
                op_key,
                self.stored_ts,
                self.stored_value,
            )
        elif tag == "ABD_UPDATE":
            op_key, ts, value = body
            if ts > self.stored_ts:
                self.stored_ts = ts
                self.stored_value = value
            ctx.send(datagram.src, "ABD_UPDATE_ACK", op_key)
        elif tag == "ABD_QUERY_ACK":
            op_key, ts, value = body
            op = self._ops.get(op_key)
            if op is not None and op.phase == "query":
                op.responders.add(datagram.src)
                if ts > op.best_ts:
                    op.best_ts = ts
                    op.best_value = value
        elif tag == "ABD_UPDATE_ACK":
            (op_key,) = body
            op = self._ops.get(op_key)
            if op is not None and op.phase == "update":
                op.responders.add(datagram.src)

    def _progress(self, ctx: Context) -> None:
        quorum = ctx.detector
        if quorum is None:
            return
        for op in list(self._ops.values()):
            if op.phase == "query" and not op.responders:
                ctx.broadcast(self.scope, "ABD_QUERY", op.op_id)
                op.responders = set()
            if op.phase == "query" and set(quorum) <= op.responders:
                # Quorum covered: move to the update phase.
                op.phase = "update"
                op.responders = set()
                if op.kind == "write":
                    ts = (op.best_ts[0] + 1, self.pid.index)
                    payload = op.value
                else:
                    ts = op.best_ts
                    payload = op.best_value
                op.best_ts = ts
                op.best_value = payload
                ctx.broadcast(self.scope, "ABD_UPDATE", op.op_id, ts, payload)
            elif op.phase == "update" and set(quorum) <= op.responders:
                result = op.best_value if op.kind == "read" else op.value
                self.completed.append((op.op_id, op.kind, result))
                ctx.output(("abd", op.kind, op.op_id, result))
                del self._ops[op.op_id]

    # Retransmission on null steps keeps phases live under any fair
    # schedule: a query that lost its broadcast re-issues it.
    def on_start(self, ctx: Context) -> None:  # pragma: no cover - trivial
        pass
