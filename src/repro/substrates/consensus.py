"""Leader-driven consensus from ``Omega ∧ Sigma`` (§4, §4.3).

The paper solves consensus in each destination group from
``Sigma_g ∧ Omega_g`` ("construct an obstruction-free consensus and boost
it with Omega" [25]).  This module is the standard message-passing
realization of that recipe — a single-decree, ballot-based protocol à la
Paxos whose quorums are ``Sigma`` samples and whose proposer activity is
gated by ``Omega``:

* only the current ``Omega`` leader runs ballots (the boost: eventually a
  single correct proposer runs unopposed, guaranteeing termination);
* a ballot has a *prepare* phase (learn the highest accepted value from a
  quorum) and an *accept* phase (install the value at a quorum); safety
  follows from quorum intersection, exactly as in Paxos.

The detector handed to each process must provide samples shaped as
``{"omega": leader, "sigma": quorum}`` — see :class:`OmegaSigmaSampler`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.detectors.base import FailureDetector
from repro.detectors.leader import OmegaOracle
from repro.detectors.quorum import SigmaOracle
from repro.model.failures import FailurePattern, Time
from repro.model.messages import Datagram
from repro.model.processes import ProcessId, ProcessSet
from repro.sim.kernel import Automaton, Context

#: A ballot number: (round counter, proposer index) — totally ordered.
Ballot = Tuple[int, int]

NO_BALLOT: Ballot = (0, 0)


class OmegaSigmaSampler(FailureDetector):
    """Bundles ``Omega_P`` and ``Sigma_P`` samples for the consensus code."""

    kind = "OmegaSigma"

    def __init__(self, pattern: FailurePattern, scope: ProcessSet, **kwargs) -> None:
        super().__init__()
        restricted = pattern.restricted_to(scope)
        self.omega = OmegaOracle(restricted, scope, **kwargs)
        self.sigma = SigmaOracle(restricted, scope)
        # Both oracle outputs are pure functions of the crash epoch (plus
        # Omega's stabilization boundary), so the bundled sample dict can
        # be built once per inter-instant interval instead of once per
        # step — the kernel queries it for every process every round.
        self._instants = sorted(
            set(self.sigma._crash_instants)
            | set(self.omega._crash_instants)
            | {self.omega.stabilization_time}
        )
        self._cache: Dict[Tuple[ProcessId, int], Dict[str, Any]] = {}

    def query(self, p: ProcessId, t: Time) -> Dict[str, Any]:
        key = (p, bisect_right(self._instants, t))
        sample = self._cache.get(key)
        if sample is None:
            sample = {
                "omega": self.omega.query(p, t),
                "sigma": self.sigma.query(p, t),
            }
            self._cache[key] = sample
        return sample


class ConsensusAutomaton(Automaton):
    """Per-process code of the leader-driven consensus.

    ``supersede`` selects the proposer's reaction to a PROMISE carrying a
    higher promised ballot mid-prepare: ``"abandon"`` (the default)
    abandons the ballot and retries above the observed round;
    ``"wait"`` replays the pre-fix behaviour — ignore the message and
    keep waiting — which is a known liveness stall under late-Omega
    leader rotation, retained as the ``"supersede-wait"`` scenario quirk
    so the explorer has a real historical bug to rediscover.

    ``retransmit_interval`` arms the proposer's fair-lossy-link timer: a
    leader parked in a phase re-broadcasts that phase's message every
    ``interval`` rounds, so a PREPARE/ACCEPT lost to a drop, a partition
    crossing, or a crashed-then-recovered acceptor is eventually
    re-offered (all phase messages are idempotent at the acceptor).
    ``None`` (the default) never retransmits — reliable-link runs are
    byte-identical to every previous release, which the golden
    differential suite pins.
    """

    def __init__(
        self,
        pid: ProcessId,
        scope: ProcessSet,
        supersede: str = "abandon",
        retransmit_interval: Optional[int] = None,
    ) -> None:
        if supersede not in ("abandon", "wait"):
            raise ValueError(
                f"unknown supersede policy {supersede!r}; "
                "expected 'abandon' or 'wait'"
            )
        if retransmit_interval is not None and retransmit_interval < 1:
            raise ValueError(
                f"retransmit_interval must be >= 1 round, "
                f"got {retransmit_interval!r}"
            )
        self.pid = pid
        self.supersede = supersede
        self.retransmit_interval = retransmit_interval
        self.scope = sorted(scope)
        self.proposal: Any = None
        self.decision: Any = None
        # Acceptor state.
        self.promised: Ballot = NO_BALLOT
        self.accepted_ballot: Ballot = NO_BALLOT
        self.accepted_value: Any = None
        # Proposer state.
        self._ballot: Ballot = NO_BALLOT
        self._phase: Optional[str] = None
        self._promises: Dict[ProcessId, Tuple[Ballot, Any]] = {}
        self._accepts: Set[ProcessId] = set()
        self._value_in_flight: Any = None
        self._next_forward: int = 0
        self._next_resend: int = 0

    def propose(self, value: Any) -> None:
        """Client call: submit a proposal (before or during the run)."""
        if self.proposal is None:
            self.proposal = value

    # -- Durable state (crash–recovery) ----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The durable state: what survives a crash.

        Acceptor state (``promised`` / ``accepted``) must be durable for
        Paxos safety; the proposal and decision are durable application
        state.  Proposer phase bookkeeping is deliberately *volatile* —
        a recovering proposer restarts its ballot from scratch.
        """
        return {
            "proposal": self.proposal,
            "decision": self.decision,
            "promised": list(self.promised),
            "accepted_ballot": list(self.accepted_ballot),
            "accepted_value": self.accepted_value,
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Rejoin from :meth:`snapshot`; volatile proposer state is lost.

        The resumed ballot counter starts at the promised round: the
        automaton's own acceptor promised every ballot this proposer
        ever prepared (it is in its own scope), so the next fresh ballot
        is strictly above anything it used before the crash — ballot
        uniqueness survives recovery.
        """
        self.proposal = snapshot["proposal"]
        self.decision = snapshot["decision"]
        self.promised = tuple(snapshot["promised"])
        self.accepted_ballot = tuple(snapshot["accepted_ballot"])
        self.accepted_value = snapshot["accepted_value"]
        self._ballot = (self.promised[0], self.pid.index)
        self._phase = None
        self._promises = {}
        self._accepts = set()
        self._value_in_flight = None
        self._next_forward = 0
        self._next_resend = 0

    # -- Steps -----------------------------------------------------------------

    def on_step(self, ctx: Context, datagram: Optional[Datagram]) -> None:
        if datagram is not None:
            self._handle(ctx, datagram.src, datagram.tag, datagram.body)
        self._progress(ctx)

    def _handle(
        self, ctx: Context, src: ProcessId, tag: str, body: Tuple[Any, ...]
    ) -> None:
        if tag == "PREPARE":
            (ballot,) = body
            if ballot > self.promised:
                self.promised = ballot
            ctx.send(
                src,
                "PROMISE",
                ballot,
                self.promised,
                self.accepted_ballot,
                self.accepted_value,
            )
        elif tag == "PROMISE":
            ballot, promised, acc_ballot, acc_value = body
            if ballot == self._ballot and self._phase == "prepare":
                if promised <= ballot:
                    self._promises[src] = (acc_ballot, acc_value)
                elif self.supersede == "abandon":
                    # Superseded mid-prepare: the acceptor has promised a
                    # higher ballot, so this quorum can never complete.
                    # Abandon the ballot and retry above the highest
                    # round observed — without this, a demoted-then-
                    # re-elected leader (an unstable Omega prefix) waits
                    # forever on promises that cannot arrive.  The
                    # ``"wait"`` policy does exactly that waiting: it is
                    # the retained pre-fix stall (see class docstring).
                    self._ballot = (
                        max(self._ballot[0], promised[0]),
                        self.pid.index,
                    )
                    self._phase = None
        elif tag == "ACCEPT":
            ballot, value = body
            if ballot >= self.promised:
                self.promised = ballot
                self.accepted_ballot = ballot
                self.accepted_value = value
                ctx.send(src, "ACCEPTED", ballot)
            else:
                ctx.send(src, "NACK", ballot)
        elif tag == "ACCEPTED":
            (ballot,) = body
            if ballot == self._ballot and self._phase == "accept":
                self._accepts.add(src)
        elif tag == "NACK":
            (ballot,) = body
            if ballot == self._ballot:
                self._phase = None  # retry with a higher ballot later
        elif tag == "FORWARD":
            # A non-leader relays its proposal: the leader adopts it when
            # it has none of its own (validity is preserved — the value
            # was proposed by some process).
            (value,) = body
            if self.proposal is None:
                self.proposal = value
        elif tag == "DECIDE":
            (value,) = body
            if self.decision is None:
                self.decision = value
                ctx.output(("decide", value))
                ctx.broadcast(self.scope, "DECIDE", value)

    def _progress(self, ctx: Context) -> None:
        sample = ctx.detector or {}
        leader = sample.get("omega")
        quorum = sample.get("sigma", ())
        if self.decision is not None or self.proposal is None:
            return
        if leader != self.pid:
            self._phase = None  # demoted: stop running ballots
            # Relay the proposal to the leader, throttled so the relay
            # traffic cannot starve the leader's inbox.
            if leader is not None and ctx.time >= self._next_forward:
                self._next_forward = ctx.time + 8
                ctx.send(leader, "FORWARD", self.proposal)
            return
        if self._phase is None:
            # Start a fresh, higher ballot.
            self._ballot = (self._ballot[0] + 1, self.pid.index)
            self._phase = "prepare"
            self._promises = {}
            self._arm_resend(ctx)
            ctx.broadcast(self.scope, "PREPARE", self._ballot)
        elif self._phase == "prepare" and all(
            q in self._promises for q in quorum
        ):
            # Adopt the value of the highest accepted ballot, if any.
            best: Tuple[Ballot, Any] = (NO_BALLOT, None)
            for acc in self._promises.values():
                if acc[0] > best[0]:
                    best = acc
            self._value_in_flight = (
                best[1] if best[0] > NO_BALLOT else self.proposal
            )
            self._phase = "accept"
            self._accepts = set()
            self._arm_resend(ctx)
            ctx.broadcast(
                self.scope, "ACCEPT", self._ballot, self._value_in_flight
            )
        elif self._phase == "accept" and all(
            q in self._accepts for q in quorum
        ):
            if self.decision is None:
                self.decision = self._value_in_flight
                ctx.output(("decide", self._value_in_flight))
            ctx.broadcast(self.scope, "DECIDE", self._value_in_flight)
            self._phase = "done"
        elif (
            self.retransmit_interval is not None
            and ctx.time >= self._next_resend
        ):
            # Fair-lossy-link timer: the quorum is incomplete and the
            # phase message may have been dropped (flaky link, partition
            # crossing, acceptor down between crash and rejoin) — repeat
            # it.  Acceptors treat PREPARE/ACCEPT idempotently, so a
            # duplicate can only re-elicit the lost reply.
            self._arm_resend(ctx)
            if self._phase == "prepare":
                ctx.broadcast(self.scope, "PREPARE", self._ballot)
            elif self._phase == "accept":
                ctx.broadcast(
                    self.scope, "ACCEPT", self._ballot, self._value_in_flight
                )

    def _arm_resend(self, ctx: Context) -> None:
        if self.retransmit_interval is not None:
            self._next_resend = ctx.time + self.retransmit_interval


class ConsensusCluster:
    """Convenience wrapper: one consensus instance over a process set.

    Builds the automata and the ``Omega ∧ Sigma`` samplers, exposes
    ``propose`` / ``decided`` and runs on a caller-provided kernel.
    """

    def __init__(
        self,
        pattern: FailurePattern,
        scope: ProcessSet,
        omega_stabilization: Optional[Time] = None,
    ) -> None:
        self.scope = scope
        self.automata: Dict[ProcessId, ConsensusAutomaton] = {
            p: ConsensusAutomaton(p, scope) for p in sorted(scope)
        }
        kwargs = {}
        if omega_stabilization is not None:
            kwargs["stabilization_time"] = omega_stabilization
        self.detectors: Dict[ProcessId, OmegaSigmaSampler] = {
            p: OmegaSigmaSampler(pattern, scope, **kwargs)
            for p in sorted(scope)
        }

    def propose(self, p: ProcessId, value: Any) -> None:
        self.automata[p].propose(value)

    def decision_at(self, p: ProcessId) -> Any:
        return self.automata[p].decision

    def decided_everywhere(self, alive: ProcessSet) -> bool:
        return all(
            self.automata[p].decision is not None for p in alive
        )
