"""Genuine message-passing substrates (§4.3): ABD registers from Sigma,
adopt-commit from Sigma_{g∩h}, leader consensus from Omega ∧ Sigma, and a
consensus-based replicated log (universal construction)."""

from repro.substrates.abd import RegisterAutomaton, Timestamp
from repro.substrates.adopt_commit import AdoptCommitAutomaton
from repro.substrates.consensus import (
    ConsensusAutomaton,
    ConsensusCluster,
    OmegaSigmaSampler,
)
from repro.substrates.replicated_log import (
    ReplicatedLogAutomaton,
    ReplicatedLogCluster,
)

__all__ = [
    "RegisterAutomaton",
    "Timestamp",
    "AdoptCommitAutomaton",
    "ConsensusAutomaton",
    "ConsensusCluster",
    "OmegaSigmaSampler",
    "ReplicatedLogAutomaton",
    "ReplicatedLogCluster",
]
