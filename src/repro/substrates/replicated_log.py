"""A replicated log via a sequence of consensus instances (§4.3).

The group logs ``LOG_g`` of Algorithm 1 are "built atop consensus in ``g``
using a universal construction [28]".  This module is that construction
at the message-passing level: an unbounded list of consensus slots, each
decided by a :class:`repro.substrates.consensus.ConsensusAutomaton`
instance over the carrier scope.  A replica applies decided slots in
order, yielding identical log prefixes at every member (state-machine
replication).

The contention-free fast path of Proposition 47 (adopt–commit before
consensus) is exercised separately in
:mod:`repro.substrates.adopt_commit`; here every slot runs the full
consensus, which is the slow-path cost the fast path avoids.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.model.failures import FailurePattern, Time
from repro.model.messages import Datagram
from repro.model.processes import ProcessId, ProcessSet
from repro.sim.kernel import Automaton, Context
from repro.substrates.consensus import ConsensusAutomaton, OmegaSigmaSampler


class ReplicatedLogAutomaton(Automaton):
    """Per-process code: a pipeline of consensus slots.

    Each slot multiplexes a full :class:`ConsensusAutomaton` over tagged
    datagrams (``slot`` is prepended to every message body).
    """

    def __init__(
        self, pid: ProcessId, scope: ProcessSet, supersede: str = "abandon"
    ) -> None:
        self.pid = pid
        self.scope = sorted(scope)
        self.supersede = supersede
        self._slots: Dict[int, ConsensusAutomaton] = {}
        self._pending: List[Any] = []
        self.applied: List[Any] = []
        self._next_slot = 0
        #: One reusable slot-context view, rebound per call — the kernel
        #: steps this automaton once per process per round, and a fresh
        #: wrapper allocation per step showed up in profiles.
        self._slot_ctx = _SlotContext()

    def append(self, value: Any) -> None:
        """Client call: replicate ``value`` (at-least-once per slot)."""
        self._pending.append(value)

    def idle(self) -> bool:
        """Nothing pending and no slot open at the apply head.

        A null step only drives the head slot (propose / progress), and
        the apply loop leaves the head either absent or undecided — so
        with no pending value and no head automaton, a step without a
        datagram provably changes nothing.  Later slots opened by
        incoming datagrams progress on receipt, which un-parks the
        process through the buffer check.
        """
        return not self._pending and self._slots.get(self._next_slot) is None

    def _slot(self, index: int) -> ConsensusAutomaton:
        automaton = self._slots.get(index)
        if automaton is None:
            automaton = ConsensusAutomaton(
                self.pid, frozenset(self.scope), supersede=self.supersede
            )
            self._slots[index] = automaton
        return automaton

    def on_step(self, ctx: Context, datagram: Optional[Datagram]) -> None:
        slot_ctx = self._slot_ctx
        if datagram is not None:
            slot_index = datagram.body[0]
            slot_ctx.bind(ctx, slot_index)
            self._slot(slot_index)._handle(
                slot_ctx, datagram.src, datagram.tag, datagram.body[1:]
            )
        # Drive the current head slot: propose the head pending value, and
        # keep progressing the slot while it is undecided — a leader with
        # nothing to append still runs ballots for forwarded proposals.
        head = self._slots.get(self._next_slot)
        if self._pending:
            head = self._slot(self._next_slot)
            head.propose(self._pending[0])
        if head is not None and head.decision is None:
            slot_ctx.bind(ctx, self._next_slot)
            head._progress(slot_ctx)
        # Apply decided slots in order.
        while True:
            head = self._slots.get(self._next_slot)
            if head is None or head.decision is None:
                break
            decided = head.decision
            self.applied.append(decided)
            ctx.output(("applied", self._next_slot, decided))
            if self._pending and self._pending[0] == decided:
                self._pending.pop(0)
            elif decided in self._pending:
                self._pending.remove(decided)
            self._next_slot += 1


class _SlotContext:
    """A context view that prefixes every message with its slot index.

    Rebindable: the replicated-log automaton keeps one instance and
    re-points it at the current step context and slot (the view is only
    used synchronously within one ``_handle``/``_progress`` call).
    """

    __slots__ = ("_ctx", "_slot", "pid", "time", "detector")

    def __init__(
        self, ctx: Optional[Context] = None, slot: int = 0
    ) -> None:
        self._ctx = ctx
        self._slot = slot
        self.pid = ctx.pid if ctx is not None else None
        self.time = ctx.time if ctx is not None else 0
        self.detector = ctx.detector if ctx is not None else None

    def bind(self, ctx: Context, slot: int) -> None:
        self._ctx = ctx
        self._slot = slot
        self.pid = ctx.pid
        self.time = ctx.time
        self.detector = ctx.detector

    def send(self, dst: ProcessId, tag: str, *body: Any) -> None:
        self._ctx.send(dst, tag, self._slot, *body)

    def broadcast(self, dsts, tag: str, *body: Any) -> None:
        # One batched buffer call (the buffer mints uids in destination
        # order, identical to per-destination sends).
        self._ctx.broadcast(dsts, tag, self._slot, *body)

    def output(self, value: Any) -> None:
        self._ctx.output((self._slot, value))


class ReplicatedLogCluster:
    """One replicated log over a scope, with its detector samplers."""

    def __init__(
        self,
        pattern: FailurePattern,
        scope: ProcessSet,
        omega_stabilization: Optional[Time] = None,
        supersede: str = "abandon",
    ) -> None:
        self.scope = scope
        self.automata: Dict[ProcessId, ReplicatedLogAutomaton] = {
            p: ReplicatedLogAutomaton(p, scope, supersede=supersede)
            for p in sorted(scope)
        }
        kwargs = {}
        if omega_stabilization is not None:
            kwargs["stabilization_time"] = omega_stabilization
        self.detectors: Dict[ProcessId, OmegaSigmaSampler] = {
            p: OmegaSigmaSampler(pattern, scope, **kwargs)
            for p in sorted(scope)
        }

    def append(self, p: ProcessId, value: Any) -> None:
        self.automata[p].append(value)

    def applied_at(self, p: ProcessId) -> Tuple[Any, ...]:
        return tuple(self.automata[p].applied)
