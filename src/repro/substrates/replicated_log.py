"""A replicated log via a sequence of consensus instances (§4.3).

The group logs ``LOG_g`` of Algorithm 1 are "built atop consensus in ``g``
using a universal construction [28]".  This module is that construction
at the message-passing level: an unbounded list of consensus slots, each
decided by a :class:`repro.substrates.consensus.ConsensusAutomaton`
instance over the carrier scope.  A replica applies decided slots in
order, yielding identical log prefixes at every member (state-machine
replication).

The contention-free fast path of Proposition 47 (adopt–commit before
consensus) is exercised separately in
:mod:`repro.substrates.adopt_commit`; here every slot runs the full
consensus, which is the slow-path cost the fast path avoids.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.model.failures import FailurePattern, Time
from repro.model.messages import Datagram
from repro.model.processes import ProcessId, ProcessSet
from repro.sim.kernel import Automaton, Context
from repro.sim.kernel import snapshot_hash  # noqa: F401 - re-export
from repro.substrates.consensus import ConsensusAutomaton, OmegaSigmaSampler


class ReplicatedLogAutomaton(Automaton):
    """Per-process code: a pipeline of consensus slots.

    Each slot multiplexes a full :class:`ConsensusAutomaton` over tagged
    datagrams (``slot`` is prepended to every message body).
    """

    def __init__(
        self,
        pid: ProcessId,
        scope: ProcessSet,
        supersede: str = "abandon",
        retransmit_interval: Optional[int] = None,
    ) -> None:
        self.pid = pid
        self.scope = sorted(scope)
        self.supersede = supersede
        self.retransmit_interval = retransmit_interval
        self._slots: Dict[int, ConsensusAutomaton] = {}
        self._pending: List[Any] = []
        self.applied: List[Any] = []
        self._next_slot = 0
        #: Set by :meth:`restore`: the rejoined replica must ask its
        #: peers for decisions that completed around its crash window.
        self._catchup_needed = False
        #: One reusable slot-context view, rebound per call — the kernel
        #: steps this automaton once per process per round, and a fresh
        #: wrapper allocation per step showed up in profiles.
        self._slot_ctx = _SlotContext()

    def append(self, value: Any) -> None:
        """Client call: replicate ``value`` (at-least-once per slot)."""
        self._pending.append(value)

    # -- Durable state (crash–recovery) ----------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Durable replica state: the applied prefix plus every slot's
        acceptor state (see :meth:`ConsensusAutomaton.snapshot`)."""
        return {
            "next_slot": self._next_slot,
            "applied": list(self.applied),
            "pending": list(self._pending),
            "slots": {
                slot: automaton.snapshot()
                for slot, automaton in sorted(self._slots.items())
            },
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Rejoin from :meth:`snapshot`.

        The applied prefix and ``next_slot`` come back as-is, so a
        recovered replica never re-emits ``applied`` outputs it already
        produced (no duplicate deliveries); each slot's consensus
        automaton restores its durable half and restarts its proposer.

        The rejoined replica also schedules a one-shot ``CATCHUP``
        broadcast (sent on its first post-rejoin step, when it has a
        context): a decision that completed just *before* the crash may
        have had its ``DECIDE`` datagram dropped with the crash, and
        with every peer already decided nobody will ever re-send it —
        the laggard would wait on the slot forever.  Peers answer with
        plain slot-tagged ``DECIDE`` messages, which are idempotent, so
        the exchange is safe to duplicate and the host's fair-lossy
        buffer makes it reliable.
        """
        self._catchup_needed = True
        self._next_slot = int(snapshot["next_slot"])
        self.applied = list(snapshot["applied"])
        self._pending = list(snapshot["pending"])
        self._slots = {}
        for slot, state in snapshot["slots"].items():
            automaton = ConsensusAutomaton(
                self.pid,
                frozenset(self.scope),
                supersede=self.supersede,
                retransmit_interval=self.retransmit_interval,
            )
            automaton.restore(state)
            self._slots[int(slot)] = automaton

    def idle(self) -> bool:
        """Nothing pending and no slot open at the apply head.

        A null step only drives the head slot (propose / progress), and
        the apply loop leaves the head either absent or undecided — so
        with no pending value and no head automaton, a step without a
        datagram provably changes nothing.  Later slots opened by
        incoming datagrams progress on receipt, which un-parks the
        process through the buffer check.  A freshly rejoined replica
        is never idle: its first step must send the catch-up request.
        """
        return (
            not self._catchup_needed
            and not self._pending
            and self._slots.get(self._next_slot) is None
        )

    def _slot(self, index: int) -> ConsensusAutomaton:
        automaton = self._slots.get(index)
        if automaton is None:
            automaton = ConsensusAutomaton(
                self.pid,
                frozenset(self.scope),
                supersede=self.supersede,
                retransmit_interval=self.retransmit_interval,
            )
            self._slots[index] = automaton
        return automaton

    def on_step(self, ctx: Context, datagram: Optional[Datagram]) -> None:
        slot_ctx = self._slot_ctx
        if self._catchup_needed:
            # First post-rejoin step: ask every peer for decisions made
            # around the crash window.  One shot suffices — the host
            # buffer is fair-lossy, so a dropped request is re-enqueued.
            self._catchup_needed = False
            peers = [p for p in self.scope if p != self.pid]
            if peers:
                ctx.broadcast(peers, "CATCHUP", self._next_slot)
        if datagram is not None and datagram.tag == "CATCHUP":
            # Log-level request (no slot prefix): replay our applied
            # decisions from the requested slot on as ordinary DECIDE
            # messages — idempotent at the laggard, and exactly what a
            # non-dropped broadcast would have delivered.
            (from_slot,) = datagram.body
            for slot_index in range(from_slot, self._next_slot):
                ctx.send(
                    datagram.src, "DECIDE", slot_index,
                    self.applied[slot_index],
                )
        elif datagram is not None:
            slot_index = datagram.body[0]
            slot_ctx.bind(ctx, slot_index)
            self._slot(slot_index)._handle(
                slot_ctx, datagram.src, datagram.tag, datagram.body[1:]
            )
        # Drive the current head slot: propose the head pending value, and
        # keep progressing the slot while it is undecided — a leader with
        # nothing to append still runs ballots for forwarded proposals.
        head = self._slots.get(self._next_slot)
        if self._pending:
            head = self._slot(self._next_slot)
            head.propose(self._pending[0])
        if head is not None and head.decision is None:
            slot_ctx.bind(ctx, self._next_slot)
            head._progress(slot_ctx)
        # Apply decided slots in order.
        while True:
            head = self._slots.get(self._next_slot)
            if head is None or head.decision is None:
                break
            decided = head.decision
            self.applied.append(decided)
            ctx.output(("applied", self._next_slot, decided))
            if self._pending and self._pending[0] == decided:
                self._pending.pop(0)
            elif decided in self._pending:
                self._pending.remove(decided)
            self._next_slot += 1


class _SlotContext:
    """A context view that prefixes every message with its slot index.

    Rebindable: the replicated-log automaton keeps one instance and
    re-points it at the current step context and slot (the view is only
    used synchronously within one ``_handle``/``_progress`` call).
    """

    __slots__ = ("_ctx", "_slot", "pid", "time", "detector")

    def __init__(
        self, ctx: Optional[Context] = None, slot: int = 0
    ) -> None:
        self._ctx = ctx
        self._slot = slot
        self.pid = ctx.pid if ctx is not None else None
        self.time = ctx.time if ctx is not None else 0
        self.detector = ctx.detector if ctx is not None else None

    def bind(self, ctx: Context, slot: int) -> None:
        self._ctx = ctx
        self._slot = slot
        self.pid = ctx.pid
        self.time = ctx.time
        self.detector = ctx.detector

    def send(self, dst: ProcessId, tag: str, *body: Any) -> None:
        self._ctx.send(dst, tag, self._slot, *body)

    def broadcast(self, dsts, tag: str, *body: Any) -> None:
        # One batched buffer call (the buffer mints uids in destination
        # order, identical to per-destination sends).
        self._ctx.broadcast(dsts, tag, self._slot, *body)

    def output(self, value: Any) -> None:
        self._ctx.output((self._slot, value))


class ReplicatedLogCluster:
    """One replicated log over a scope, with its detector samplers."""

    def __init__(
        self,
        pattern: FailurePattern,
        scope: ProcessSet,
        omega_stabilization: Optional[Time] = None,
        supersede: str = "abandon",
        retransmit_interval: Optional[int] = None,
    ) -> None:
        self.scope = scope
        self.automata: Dict[ProcessId, ReplicatedLogAutomaton] = {
            p: ReplicatedLogAutomaton(
                p,
                scope,
                supersede=supersede,
                retransmit_interval=retransmit_interval,
            )
            for p in sorted(scope)
        }
        kwargs = {}
        if omega_stabilization is not None:
            kwargs["stabilization_time"] = omega_stabilization
        self.detectors: Dict[ProcessId, OmegaSigmaSampler] = {
            p: OmegaSigmaSampler(pattern, scope, **kwargs)
            for p in sorted(scope)
        }

    def append(self, p: ProcessId, value: Any) -> None:
        self.automata[p].append(value)

    def applied_at(self, p: ProcessId) -> Tuple[Any, ...]:
        return tuple(self.automata[p].applied)
