"""Message-passing adopt–commit from ``Sigma`` ([20], §4.3).

The universal construction of §4.3 guards every consensus instance of
``LOG_{g∩h}`` with an adopt–commit object implemented from
``Sigma_{g∩h}`` so that contention-free executions never invoke the
(full-group) consensus.  This is the classic two-round construction:

* round 1: announce your value to the scope, collect a quorum of echoes;
  if all echoes carry your value, you *lock* it;
* round 2: announce ``(value, locked?)``, collect a quorum; commit when
  every response saw a lock on the same value, else adopt any locked
  value seen (or the first value otherwise).

Safety: two quorums intersect (``Sigma``), so if anyone commits ``v``,
every round-2 quorum contains a lock on ``v`` and everyone adopts ``v``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.model.messages import Datagram
from repro.model.processes import ProcessId, ProcessSet
from repro.sim.kernel import Automaton, Context


class AdoptCommitAutomaton(Automaton):
    """Per-process code of the two-round adopt–commit object."""

    def __init__(self, pid: ProcessId, scope: ProcessSet) -> None:
        self.pid = pid
        self.scope = sorted(scope)
        self.proposal: Any = None
        self.outcome: Optional[Tuple[bool, Any]] = None
        self._phase: Optional[str] = None
        self._round1: Dict[ProcessId, Any] = {}
        self._round2: Dict[ProcessId, Tuple[Any, bool]] = {}
        self._locked: bool = False
        self._seen_first: Any = None
        # Replica state: echoed values per round.
        self._echo1: Any = None
        self._echo2: Optional[Tuple[Any, bool]] = None

    def propose(self, value: Any) -> None:
        if self.proposal is None:
            self.proposal = value

    def on_step(self, ctx: Context, datagram: Optional[Datagram]) -> None:
        if datagram is not None:
            self._handle(ctx, datagram)
        self._progress(ctx)

    def _handle(self, ctx: Context, datagram: Datagram) -> None:
        tag, body = datagram.tag, datagram.body
        if tag == "AC1":
            (value,) = body
            if self._echo1 is None:
                self._echo1 = value
            ctx.send(datagram.src, "AC1_ACK", self._echo1)
        elif tag == "AC1_ACK":
            (value,) = body
            if self._phase == "round1":
                self._round1[datagram.src] = value
        elif tag == "AC2":
            value, locked = body
            if self._echo2 is None or (locked and not self._echo2[1]):
                self._echo2 = (value, locked)
            ctx.send(datagram.src, "AC2_ACK", *self._echo2)
        elif tag == "AC2_ACK":
            value, locked = body
            if self._phase == "round2":
                self._round2[datagram.src] = (value, locked)

    def _progress(self, ctx: Context) -> None:
        quorum = ctx.detector
        if quorum is None or self.outcome is not None or self.proposal is None:
            return
        if self._phase is None:
            self._phase = "round1"
            ctx.broadcast(self.scope, "AC1", self.proposal)
        elif self._phase == "round1" and set(quorum) <= set(self._round1):
            values = set(self._round1.values())
            self._locked = values == {self.proposal}
            self._seen_first = sorted(
                self._round1.values(), key=repr
            )[0]
            self._phase = "round2"
            ctx.broadcast(self.scope, "AC2", self.proposal, self._locked)
        elif self._phase == "round2" and set(quorum) <= set(self._round2):
            responses = list(self._round2.values())
            locked_values = {v for v, locked in responses if locked}
            if locked_values and all(locked for _, locked in responses):
                value = sorted(locked_values, key=repr)[0]
                self.outcome = (True, value)  # commit
            elif locked_values:
                value = sorted(locked_values, key=repr)[0]
                self.outcome = (False, value)  # adopt the locked value
            else:
                self.outcome = (False, self._seen_first)
            ctx.output(("adopt-commit",) + self.outcome)
            self._phase = "done"
