"""Comparator protocols: the non-genuine broadcast-based baseline (§2.3),
Skeen's failure-free classic [5, 22], and the disjoint-partition
architecture of the prior fault-tolerant protocols (§7)."""

from repro.baselines.broadcast import BroadcastMulticast
from repro.baselines.partitioned import PartitionedMulticast
from repro.baselines.skeen import SkeenMulticast

__all__ = [
    "BroadcastMulticast",
    "PartitionedMulticast",
    "SkeenMulticast",
]
