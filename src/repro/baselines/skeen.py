"""Skeen's algorithm [5, 22]: the failure-free genuine classic.

The original timestamp-based protocol that Algorithm 1 generalizes:

1. the sender sends the message to its destination group;
2. every destination member replies with a *proposed timestamp* (its
   logical clock, bumped past everything proposed so far);
3. the sender picks the maximum and announces the *final timestamp*;
4. members deliver messages in final-timestamp order, once no message
   with a smaller (proposed or final) timestamp is outstanding.

This is the ``bump to the highest position`` procedure of §4.2 without
fault tolerance: if any destination member crashes mid-protocol, the
message (and everything ordered after it) blocks forever — the gap that
motivates ``mu``.  The implementation is message-granular over three
logical phases per message and charges steps exactly to the destination
members, so it is genuine and passes the Minimality audit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.groups.topology import GroupTopology
from repro.metrics.trace import TraceRecorder
from repro.model.errors import SimulationError
from repro.model.failures import FailurePattern, Time
from repro.model.messages import MessageFactory, MulticastMessage
from repro.model.processes import ProcessId
from repro.model.runs import RunRecord
from repro.runtime import Scheduler, SystemActor

#: A Skeen timestamp: (clock value, proposer index) — totally ordered.
SkeenStamp = Tuple[int, int]


@dataclass
class _MessageState:
    message: MulticastMessage
    proposals: Dict[ProcessId, SkeenStamp] = field(default_factory=dict)
    final: Optional[SkeenStamp] = None


class SkeenMulticast:
    """Failure-free genuine atomic multicast (Skeen's protocol).

    ``run`` executes the three phases round by round; if a destination
    member crashes before phase 2 completes, the message stays pending —
    ``blocked_messages`` reports them, reproducing the motivation for the
    paper's fault-tolerant generalization.
    """

    def __init__(
        self, topology: GroupTopology, pattern: FailurePattern, seed: int = 0
    ) -> None:
        self.topology = topology
        self.pattern = pattern
        self.record = RunRecord(topology.processes, pattern)
        self.tracer = TraceRecorder()
        self.factory = MessageFactory()
        self._clocks: Dict[ProcessId, int] = {
            p: 0 for p in topology.processes
        }
        self._states: Dict[object, _MessageState] = {}
        self._delivered: Set[Tuple[ProcessId, object]] = set()
        # The whole protocol advances as one actor per round; crash
        # filtering happens inside the phases (per destination member),
        # so the actor itself is always schedulable.
        self._scheduler = Scheduler(
            {"skeen": SystemActor(self._advance)},
            rng=random.Random(seed),
            tracer=self.tracer,
            is_alive=lambda _key, _t: True,
            scheduling="scan",
        )

    @property
    def time(self) -> Time:
        return self._scheduler.time

    @property
    def last_run_quiescent(self) -> bool:
        return self._scheduler.last_run_quiescent

    # -- Client interface ---------------------------------------------------------

    def multicast(
        self, src: ProcessId, group: str, payload: object = None
    ) -> MulticastMessage:
        if not self.pattern.is_alive(src, self.time):
            raise SimulationError(f"{src} is crashed and cannot multicast")
        g = self.topology.group(group)
        if src not in g:
            raise SimulationError(f"{src.name} does not belong to {group}")
        message = self.factory.multicast(src, g.members, payload)
        self.record.note_multicast(self.time, src, message)
        self._states[message.mid] = _MessageState(message)
        self.record.note_step(self.time, src, received="skeen.send")
        return message

    # -- Protocol phases --------------------------------------------------------------

    def _collect_proposals(self, state: _MessageState) -> None:
        """Phase 2: destination members propose timestamps."""
        for p in sorted(state.message.dst):
            if p in state.proposals:
                continue
            if not self.pattern.is_alive(p, self.time):
                continue  # a dead member never proposes: the gap
            self._clocks[p] += 1
            state.proposals[p] = (self._clocks[p], p.index)
            self.record.note_step(self.time, p, received="skeen.propose")

    def _finalize(self, state: _MessageState) -> None:
        """Phase 3: the sender announces max(proposals)."""
        message = state.message
        if state.final is not None or not self.pattern.is_alive(
            message.src, self.time
        ):
            return
        if set(state.proposals) >= set(message.dst):
            state.final = max(state.proposals.values())
            self.record.note_step(
                self.time, message.src, received="skeen.final"
            )
            # Members fast-forward their clocks past the final stamp.
            for p in message.dst:
                self._clocks[p] = max(self._clocks[p], state.final[0])

    def _deliverable(self, p: ProcessId, state: _MessageState) -> bool:
        """Deliver in final-stamp order: nothing smaller outstanding."""
        if state.final is None or p not in state.message.dst:
            return False
        for other in self._states.values():
            if other is state or p not in other.message.dst:
                continue
            if other.final is None:
                floor = other.proposals.get(p)
                if floor is not None and floor < state.final:
                    return False  # a smaller proposal might finalize lower
                if floor is None:
                    return False  # not yet proposed: could order anywhere
            elif other.final < state.final and (
                (p, other.message.mid) not in self._delivered
            ):
                return False
        return True

    def tick(self) -> int:
        """One protocol round (delegated to the shared scheduler)."""
        return self._scheduler.round()

    def _advance(self, t: Time) -> int:
        fired = 0
        for state in list(self._states.values()):
            self._collect_proposals(state)
            self._finalize(state)
        for state in sorted(
            self._states.values(),
            key=lambda s: (s.final is None, s.final or (0, 0)),
        ):
            for p in sorted(state.message.dst):
                key = (p, state.message.mid)
                if key in self._delivered:
                    continue
                if not self.pattern.is_alive(p, self.time):
                    continue
                if self._deliverable(p, state):
                    self._delivered.add(key)
                    self.record.note_delivery(self.time, p, state.message)
                    self.record.note_step(
                        self.time, p, received="skeen.deliver"
                    )
                    fired += 1
        return fired

    def run(self, max_rounds: int = 200) -> int:
        """Run until two consecutive idle rounds (or ``max_rounds``)."""
        return self._scheduler.run(max_rounds, quiescent_rounds=2).rounds

    # -- Introspection --------------------------------------------------------------------

    def blocked_messages(self) -> Tuple[MulticastMessage, ...]:
        """Messages some correct member will never deliver (the gap)."""
        blocked = []
        for state in self._states.values():
            expected = {
                p
                for p in state.message.dst
                if self.pattern.is_correct(p)
            }
            got = self.record.delivered_by(state.message)
            if expected - got:
                blocked.append(state.message)
        return tuple(blocked)

    def delivered_at(self, p: ProcessId) -> Tuple[MulticastMessage, ...]:
        return self.record.local_order(p)
