"""The partitioned baseline: disjoint groups as logically correct
entities (§7; the assumption behind [32, 17, 21, 10, 31, 13, 35]).

Almost all published genuine protocols sidestep the impossibility of [26]
by decomposing the destination groups into *disjoint partitions*, each
assumed to never fail as a whole ("a logically correct entity").  This
baseline implements that architecture:

* the processes are divided into disjoint partitions; each destination
  group must be a union of partitions;
* each partition sequences messages with a partition-local logical clock
  (one consensus ring per partition in a deployment);
* a message is timestamped with the maximum across its partitions
  (a Skeen exchange between partition leaders) and delivered in global
  timestamp order.

The decisive limitation reproduced here: if a partition loses *all* its
members, every message addressed to it blocks — whereas Algorithm 1
tolerates any number of failures.  Conversely, while partitions stay
live, the protocol is genuine and orders correctly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.groups.topology import GroupTopology
from repro.metrics.trace import TraceRecorder
from repro.model.errors import SimulationError, TopologyError
from repro.model.failures import FailurePattern, Time
from repro.model.messages import MessageFactory, MulticastMessage
from repro.model.processes import ProcessId, ProcessSet, pset
from repro.model.runs import RunRecord
from repro.runtime import Scheduler, SystemActor

#: A partitioned timestamp: (clock, partition index) — totally ordered.
Stamp = Tuple[int, int]


@dataclass
class _Pending:
    message: MulticastMessage
    partitions: Tuple[int, ...]
    proposals: Dict[int, Stamp] = field(default_factory=dict)
    final: Optional[Stamp] = None


class PartitionedMulticast:
    """Genuine atomic multicast under the disjoint-partition assumption.

    Args:
        partitions: disjoint process sets covering every group (each
            group must be a union of partitions).
    """

    def __init__(
        self,
        topology: GroupTopology,
        pattern: FailurePattern,
        partitions: Sequence[ProcessSet],
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.pattern = pattern
        self.partitions: Tuple[ProcessSet, ...] = tuple(
            pset(part) for part in partitions
        )
        seen: Set[ProcessId] = set()
        for part in self.partitions:
            if seen & part:
                raise TopologyError("partitions must be disjoint")
            seen |= part
        for g in topology.groups:
            covered: Set[ProcessId] = set()
            for part in self.partitions:
                if part <= g.members:
                    covered |= part
            if covered != set(g.members):
                raise TopologyError(
                    f"group {g.name} is not a union of partitions"
                )
        self.record = RunRecord(topology.processes, pattern)
        self.tracer = TraceRecorder()
        self.factory = MessageFactory()
        self._clocks: List[int] = [0] * len(self.partitions)
        self._pending: Dict[object, _Pending] = {}
        self._delivered: Set[Tuple[ProcessId, object]] = set()
        # One actor for the whole partition mesh; partition liveness is
        # checked inside the phases (the "logically correct entity").
        self._scheduler = Scheduler(
            {"partitioned": SystemActor(self._advance)},
            rng=random.Random(seed),
            tracer=self.tracer,
            is_alive=lambda _key, _t: True,
            scheduling="scan",
        )

    @property
    def time(self) -> Time:
        return self._scheduler.time

    @property
    def last_run_quiescent(self) -> bool:
        return self._scheduler.last_run_quiescent

    # -- Helpers ---------------------------------------------------------------------

    def _partitions_of(self, message: MulticastMessage) -> Tuple[int, ...]:
        return tuple(
            i
            for i, part in enumerate(self.partitions)
            if part <= message.dst
        )

    def _partition_alive(self, index: int) -> bool:
        return any(
            self.pattern.is_alive(p, self.time)
            for p in self.partitions[index]
        )

    # -- Client interface ---------------------------------------------------------------

    def multicast(
        self, src: ProcessId, group: str, payload: object = None
    ) -> MulticastMessage:
        if not self.pattern.is_alive(src, self.time):
            raise SimulationError(f"{src} is crashed and cannot multicast")
        g = self.topology.group(group)
        if src not in g:
            raise SimulationError(f"{src.name} does not belong to {group}")
        message = self.factory.multicast(src, g.members, payload)
        self.record.note_multicast(self.time, src, message)
        self._pending[message.mid] = _Pending(
            message, self._partitions_of(message)
        )
        return message

    # -- Protocol ----------------------------------------------------------------------------

    def tick(self) -> int:
        """One protocol round (delegated to the shared scheduler)."""
        return self._scheduler.round()

    def _advance(self, t: Time) -> int:
        fired = 0
        for pending in self._pending.values():
            # Each live partition proposes once ("logically correct": the
            # whole partition must be alive to answer for the entity).
            for index in pending.partitions:
                if index in pending.proposals:
                    continue
                if not self._partition_alive(index):
                    continue  # a dead partition blocks the message
                self._clocks[index] += 1
                pending.proposals[index] = (self._clocks[index], index)
                for p in self.partitions[index]:
                    if self.pattern.is_alive(p, self.time):
                        self.record.note_step(
                            self.time, p, received="part.propose"
                        )
            if pending.final is None and set(pending.proposals) == set(
                pending.partitions
            ):
                pending.final = max(pending.proposals.values())
                for index in pending.partitions:
                    self._clocks[index] = max(
                        self._clocks[index], pending.final[0]
                    )
        # Deliver in final-stamp order per process.
        ready = sorted(
            (p for p in self._pending.values() if p.final is not None),
            key=lambda p: p.final,
        )
        for pending in ready:
            if not self._deliverable(pending):
                continue
            for p in sorted(pending.message.dst):
                key = (p, pending.message.mid)
                if key in self._delivered:
                    continue
                if not self.pattern.is_alive(p, self.time):
                    continue
                self._delivered.add(key)
                self.record.note_delivery(self.time, p, pending.message)
                self.record.note_step(self.time, p, received="part.deliver")
                fired += 1
        return fired

    def _deliverable(self, pending: _Pending) -> bool:
        for other in self._pending.values():
            if other is pending:
                continue
            if not set(other.partitions) & set(pending.partitions):
                continue
            if other.final is None:
                return False  # unfinalized sharing a partition: wait
            if other.final < pending.final:
                delivered_everywhere = all(
                    (p, other.message.mid) in self._delivered
                    or not self.pattern.is_alive(p, self.time)
                    for p in other.message.dst
                )
                if not delivered_everywhere:
                    return False
        return True

    def run(self, max_rounds: int = 200) -> int:
        """Run until two consecutive idle rounds (or ``max_rounds``)."""
        return self._scheduler.run(max_rounds, quiescent_rounds=2).rounds

    def blocked_messages(self) -> Tuple[MulticastMessage, ...]:
        """Messages stuck behind a fully crashed partition."""
        return tuple(
            pending.message
            for pending in self._pending.values()
            if pending.final is None
        )

    def delivered_at(self, p: ProcessId) -> Tuple[MulticastMessage, ...]:
        return self.record.local_order(p)
