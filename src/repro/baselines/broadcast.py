"""The non-genuine baseline: atomic multicast atop atomic broadcast (§2.3).

"To disseminate a message it suffices to broadcast it, and upon reception
only messages addressed to the local machine are delivered.  With this
approach, every process takes computational steps to deliver every
message, including the ones it is not concerned with" — this baseline is
that strategy, and exists to reproduce the scalability motivation
([33, 37]): its per-process work grows with the *total* load, not the
local load, and it fails the Minimality audit by construction.

The atomic-broadcast substrate is abstracted as a totally ordered global
log (in a deployment: one Paxos/Raft ring over all processes); each
appended message costs one step at *every* alive process — the defining
overhead of the approach.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.groups.topology import GroupTopology
from repro.metrics.trace import TraceRecorder
from repro.model.errors import SimulationError
from repro.model.failures import FailurePattern, Time
from repro.model.messages import MessageFactory, MulticastMessage
from repro.model.processes import ProcessId
from repro.model.runs import RunRecord
from repro.runtime import Scheduler, SystemActor


class BroadcastMulticast:
    """Atomic multicast implemented over a global atomic broadcast.

    Same client API shape as the genuine engine: ``multicast`` then
    ``run``; the trace lands in ``record`` for the property checkers.
    """

    def __init__(
        self, topology: GroupTopology, pattern: FailurePattern, seed: int = 0
    ) -> None:
        self.topology = topology
        self.pattern = pattern
        self.record = RunRecord(topology.processes, pattern)
        self.tracer = TraceRecorder()
        self.factory = MessageFactory()
        self._order: List[MulticastMessage] = []
        self._delivered_upto = 0
        # One global sequencer actor: each round drains one slot of the
        # total order (the atomic-broadcast ring's decision granularity).
        self._scheduler = Scheduler(
            {"abcast": SystemActor(self._advance)},
            rng=random.Random(seed),
            tracer=self.tracer,
            is_alive=lambda _key, _t: True,
            scheduling="scan",
        )

    @property
    def time(self) -> Time:
        return self._scheduler.time

    @property
    def last_run_quiescent(self) -> bool:
        return self._scheduler.last_run_quiescent

    def multicast(
        self, src: ProcessId, group: str, payload: object = None
    ) -> MulticastMessage:
        """Broadcast ``payload``: it enters the global total order."""
        if not self.pattern.is_alive(src, self.time):
            raise SimulationError(f"{src} is crashed and cannot multicast")
        g = self.topology.group(group)
        if src not in g:
            raise SimulationError(f"{src.name} does not belong to {group}")
        message = self.factory.multicast(src, g.members, payload)
        self.record.note_multicast(self.time, src, message)
        self._order.append(message)
        return message

    def tick(self) -> bool:
        """Process the next message of the global order.

        Every alive process takes a step for it (the non-genuine cost);
        destination members additionally deliver.  Returns whether a
        message was processed; the clock advances either way (a slot of
        the broadcast ring elapses even when nothing was proposed).
        """
        return self._scheduler.round() > 0

    def _advance(self, t: Time) -> int:
        if self._delivered_upto >= len(self._order):
            return 0
        message = self._order[self._delivered_upto]
        self._delivered_upto += 1
        for p in sorted(self.topology.processes):
            if not self.pattern.is_alive(p, t):
                continue
            self.record.note_step(t, p, received="abcast.order")
            if p in message.dst:
                self.record.note_delivery(t, p, message)
        return 1

    def run(self, max_rounds: int = 10_000) -> int:
        """Drain the global order; quiescent after one empty slot."""
        return self._scheduler.run(max_rounds, quiescent_rounds=1).rounds

    def delivered_at(self, p: ProcessId) -> Tuple[MulticastMessage, ...]:
        return self.record.local_order(p)
