"""The non-genuine baseline: atomic multicast atop atomic broadcast (§2.3).

"To disseminate a message it suffices to broadcast it, and upon reception
only messages addressed to the local machine are delivered.  With this
approach, every process takes computational steps to deliver every
message, including the ones it is not concerned with" — this baseline is
that strategy, and exists to reproduce the scalability motivation
([33, 37]): its per-process work grows with the *total* load, not the
local load, and it fails the Minimality audit by construction.

The atomic-broadcast substrate is abstracted as a totally ordered global
log (in a deployment: one Paxos/Raft ring over all processes); each
appended message costs one step at *every* alive process — the defining
overhead of the approach.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.groups.topology import GroupTopology
from repro.model.errors import SimulationError
from repro.model.failures import FailurePattern, Time
from repro.model.messages import MessageFactory, MulticastMessage
from repro.model.processes import ProcessId
from repro.model.runs import RunRecord


class BroadcastMulticast:
    """Atomic multicast implemented over a global atomic broadcast.

    Same client API shape as the genuine engine: ``multicast`` then
    ``run``; the trace lands in ``record`` for the property checkers.
    """

    def __init__(
        self, topology: GroupTopology, pattern: FailurePattern, seed: int = 0
    ) -> None:
        self.topology = topology
        self.pattern = pattern
        self.record = RunRecord(topology.processes, pattern)
        self.factory = MessageFactory()
        self.time: Time = 0
        self._order: List[MulticastMessage] = []
        self._delivered_upto = 0

    def multicast(
        self, src: ProcessId, group: str, payload: object = None
    ) -> MulticastMessage:
        """Broadcast ``payload``: it enters the global total order."""
        if not self.pattern.is_alive(src, self.time):
            raise SimulationError(f"{src} is crashed and cannot multicast")
        g = self.topology.group(group)
        if src not in g:
            raise SimulationError(f"{src.name} does not belong to {group}")
        message = self.factory.multicast(src, g.members, payload)
        self.record.note_multicast(self.time, src, message)
        self._order.append(message)
        return message

    def tick(self) -> bool:
        """Process the next message of the global order.

        Every alive process takes a step for it (the non-genuine cost);
        destination members additionally deliver.
        """
        if self._delivered_upto >= len(self._order):
            return False
        self.time += 1
        message = self._order[self._delivered_upto]
        self._delivered_upto += 1
        for p in sorted(self.topology.processes):
            if not self.pattern.is_alive(p, self.time):
                continue
            self.record.note_step(self.time, p, received="abcast.order")
            if p in message.dst:
                self.record.note_delivery(self.time, p, message)
        return True

    def run(self, max_rounds: int = 10_000) -> int:
        rounds = 0
        while rounds < max_rounds and self.tick():
            rounds += 1
        return rounds

    def delivered_at(self, p: ProcessId) -> Tuple[MulticastMessage, ...]:
        return self.record.local_order(p)
