"""A seeded-deterministic virtual clock for asyncio event loops.

The async driver's determinism escape hatch (ROADMAP item 1 /
``clock="virtual"``): instead of sleeping through real wall time, the
loop's notion of time jumps straight to the next scheduled callback.
Two properties follow:

* **Replayability** — with all latencies drawn from a seeded RNG and
  the loop never consulting the OS clock, a run is a pure function of
  its :class:`repro.workloads.spec.ScenarioSpec`; async counterexamples
  shrink under ddmin and replay from repro files exactly like round
  ones.
* **Speed** — a scenario spanning thousands of simulated round units
  finishes in milliseconds, which is what lets the differential
  agreement suite sweep 20 seeds per topology inside a test budget.

Mechanics: :meth:`VirtualClock.install` shadows ``loop.time`` with the
virtual reading and wraps the loop selector's ``select`` so a wait of
``timeout`` seconds *advances* virtual time by that amount instead of
blocking.  ``asyncio``'s own scheduling discipline (FIFO ready queue,
min-heap timers keyed on the times we control) is deterministic given a
deterministic program, so no further patching is needed.  Only the one
loop instance is touched — the wall clock of the process, and of every
other loop, is unaffected.
"""

from __future__ import annotations

from typing import Any


class VirtualClock:
    """Virtual time source installable onto one asyncio event loop."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def time(self) -> float:
        """The current virtual time, in seconds."""
        return self._now

    def install(self, loop: Any) -> None:
        """Take over ``loop``'s clock and selector wait.

        After this call ``loop.time()`` returns virtual time and any
        selector wait with a positive timeout advances it by exactly
        that timeout (the selector is still polled non-blockingly first,
        so real I/O readiness — there is none in driver runs — would
        still win).  Install before the loop runs anything.
        """
        # Instance attribute shadows the bound method.
        loop.time = self.time
        selector = loop._selector
        inner_select = selector.select

        def select(timeout: Any = None) -> Any:
            events = inner_select(0)
            if not events and timeout:
                self._now += timeout
            return events

        selector.select = select


__all__ = ["VirtualClock"]
