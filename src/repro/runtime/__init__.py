"""repro.runtime — the shared execution loop of every scenario family.

One :class:`Scheduler` owns the per-round contract (clock, alive ∩
participation filtering, seeded shuffle, dispatch, tracer accounting,
settle-horizon-aware quiescence); hosts adapt their execution units to
the :class:`Actor` protocol via the adapters in
:mod:`repro.runtime.actors`.
"""

from repro.runtime.actors import AutomatonActor, SharedObjectActor, SystemActor
from repro.runtime.scheduler import (
    SCHEDULING_MODES,
    Actor,
    RunOutcome,
    Scheduler,
)

__all__ = [
    "Actor",
    "AutomatonActor",
    "RunOutcome",
    "Scheduler",
    "SCHEDULING_MODES",
    "SharedObjectActor",
    "SystemActor",
]
