"""repro.runtime — the shared execution loop of every scenario family.

One :class:`ExecutionCore` owns the transport/clock-agnostic semantics
(actor registry, alive ∩ participation filtering, settle-horizon and
quiescence accounting, tracer/injector hooks); two drivers execute it:
the round-based :class:`Scheduler` (a.k.a. :class:`RoundDriver`, the
lockstep loop with the seeded shuffle) and the :class:`AsyncDriver`
(asyncio tasks over latency-modelled in-memory channels, with a seeded
:class:`VirtualClock` for deterministic replay).  Hosts adapt their
execution units to the :class:`Actor` protocol via the adapters in
:mod:`repro.runtime.actors`.
"""

from repro.runtime.actors import AutomatonActor, SharedObjectActor, SystemActor
from repro.runtime.async_driver import CLOCK_MODES, AsyncDriver, AsyncTransport
from repro.runtime.clock import VirtualClock
from repro.runtime.core import ExecutionCore
from repro.runtime.delay import (
    DELAY_MODEL_KINDS,
    DelayModel,
    ExponentialDelay,
    FixedDelay,
    SlowPairsDelay,
    UniformDelay,
    build_delay_model,
    canonical_delay_spec,
    parse_delay_model,
)
from repro.runtime.scheduler import (
    SCHEDULING_MODES,
    Actor,
    RoundDriver,
    RunOutcome,
    Scheduler,
)

__all__ = [
    "Actor",
    "AsyncDriver",
    "AsyncTransport",
    "AutomatonActor",
    "CLOCK_MODES",
    "DELAY_MODEL_KINDS",
    "DelayModel",
    "ExecutionCore",
    "ExponentialDelay",
    "FixedDelay",
    "RoundDriver",
    "RunOutcome",
    "Scheduler",
    "SCHEDULING_MODES",
    "SharedObjectActor",
    "SlowPairsDelay",
    "SystemActor",
    "UniformDelay",
    "VirtualClock",
    "build_delay_model",
    "canonical_delay_spec",
    "parse_delay_model",
]
