"""Actor adapters: how each execution host plugs into the Scheduler.

Three adapters cover every loop in the repo:

* :class:`SharedObjectActor` — one Algorithm 1 process (plus its
  auxiliary components) inside a :class:`repro.core.MulticastSystem`;
  parking is driven by the system's wake-index dirty set.
* :class:`AutomatonActor` — one Appendix-A automaton inside a
  :class:`repro.sim.Kernel`; parking is driven by the automaton's
  :meth:`~repro.sim.kernel.Automaton.idle` declaration plus the message
  buffer's pending queue.
* :class:`SystemActor` — a whole subsystem as a single actor (the
  baselines and the §5/§6 emulation drivers, which advance an entire
  deployment per round and have no per-process schedule of their own).

The adapters deliberately hold a back-reference to their host instead of
copying its state: the dirty set, the started set and the message buffer
are live, shared structures, and the host's public mutators
(``wake_all``, ``multicast``, ``step_process``) must keep affecting the
very objects the actors consult.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from repro.metrics.trace import WAIT_IDLE
from repro.model.failures import Time
from repro.model.processes import ProcessId
from repro.runtime.scheduler import Actor


class SharedObjectActor(Actor):
    """One Algorithm 1 process + components, parked via the dirty set.

    A process is parked when it is absent from the system's dirty set:
    its last scan fired nothing and no shared object it reads has been
    written since (see the wake index in :mod:`repro.core.engine`).
    The engine records no wait reason for skipped processes
    (``SKIP_WAIT = ()``) — only scanned-but-blocked processes are
    histogrammed.
    """

    def __init__(self, system, pid: ProcessId) -> None:
        self._system = system
        self._pid = pid
        self._process = system.processes[pid]

    def parked(self, t: Time) -> bool:
        return self._pid not in self._system._dirty

    def fire(
        self,
        t: Time,
        budget: Optional[int] = None,
        parked: Optional[bool] = None,
    ) -> int:
        system, pid = self._system, self._pid
        system._dirty.discard(pid)
        fired = 0
        for component in system._components:
            fired += component(pid, t)
        fired += self._process.try_actions(t, budget=budget)
        if fired:
            # Its own local state moved: its next action may already be
            # enabled without any further shared-object write.
            system._dirty.add(pid)
        return fired

    def wait_reasons(self) -> Iterable[str]:
        return self._process.wait_reasons or {WAIT_IDLE}


class AutomatonActor(Actor):
    """One Appendix-A automaton, parked via ``idle()`` + empty inbox.

    A started process whose automaton reports idle and whose inbox is
    empty may be skipped: its step would receive the null message and,
    by the automaton's own declaration, change nothing.  The same test
    defines *productivity* — :meth:`fire` always takes the step (fair
    rounds step everyone on a full scan) but returns 0 when the step was
    declared changeless beforehand, so quiescence detection sees through
    no-op steps.  Skipped automata are accounted as idle waits, matching
    the event-driven kernel's accounting.
    """

    SKIP_WAIT: Tuple[str, ...] = (WAIT_IDLE,)

    def __init__(self, kernel, pid: ProcessId) -> None:
        self._kernel = kernel
        self._pid = pid
        # Live references (the kernel never rebinds these attributes);
        # resolving them per parked() call showed up in profiles.
        self._automaton = kernel.automata[pid]
        self._buffer = kernel.buffer

    def parked(self, t: Time) -> bool:
        return (
            self._pid in self._kernel._started
            and self._automaton.idle()
            and not self._buffer.has_pending(self._pid)
        )

    def fire(
        self,
        t: Time,
        budget: Optional[int] = None,
        parked: Optional[bool] = None,
    ) -> int:
        productive = not self.parked(t) if parked is None else not parked
        self._kernel.step_process(self._pid)
        return 1 if productive else 0

    def wait_reasons(self) -> Iterable[str]:
        return (WAIT_IDLE,)


class SystemActor(Actor):
    """A whole subsystem as one always-eligible actor.

    Wraps a ``fire(t) -> int`` callable that advances the entire
    deployment by one round and reports how many actions it fired — the
    shape of the baselines' and emulation drivers' old ``tick`` bodies,
    minus the clock bump the scheduler now owns.
    """

    def __init__(self, advance: Callable[[Time], int]) -> None:
        self._advance = advance

    def fire(
        self,
        t: Time,
        budget: Optional[int] = None,
        parked: Optional[bool] = None,
    ) -> int:
        return self._advance(t)

    def wait_reasons(self) -> Iterable[str]:
        return (WAIT_IDLE,)
