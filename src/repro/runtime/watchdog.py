"""Stall watchdog: a liveness backstop for every execution loop.

A *stall* is a run that keeps consuming budget without making useful
progress — the superseded-proposer bug (``supersede-wait`` quirk) is the
canonical specimen: the kernel keeps circulating datagrams forever while
no replica ever applies another log entry.  Without a backstop such a
run burns its entire round budget (virtual time) or hangs a sweep for
real wall-clock time; with one, it fails *fast* and fails *descriptive*.

:class:`StallWatchdog` is a ``stop_when``-style probe the drivers call
once per round (or per supervision tick, for the async driver).  It
watches a caller-supplied *progress fingerprint* — deliveries recorded,
log entries applied — and raises :class:`StallError` once the
fingerprint has not changed for ``window`` consecutive checks past the
detector settle horizon, or once an optional *wall-clock* budget since
the last progress elapses.  The error carries the wait-reason histogram
of the stalled suffix, so the triage record says not just "it stalled"
but *what everyone was waiting for* — the histogram is how the
supersede-wait stall was originally diagnosed.

The watchdog is deliberately an execution-harness concern, not part of
the :class:`~repro.workloads.spec.ScenarioSpec`: two runs of one spec
with different watchdog settings explore the same run, one just gives
up on it earlier.  Spec hashes, cache keys and golden traces are
therefore untouched by watchdog configuration.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, Mapping, Optional

from repro.model.errors import SimulationError

__all__ = ["StallError", "StallWatchdog"]


class StallError(SimulationError):
    """A run made no progress for a whole no-progress window.

    Attributes:
        wait_reasons: histogram of why scanned-but-idle processes were
            blocked over the stalled suffix — the diagnosis.
        stalled_checks: how many consecutive progress checks saw no
            change before the watchdog gave up.
        at_time: logical time at which the watchdog fired.
        wall_elapsed: wall seconds since the last progress, when the
            wall-clock budget (not the round window) tripped the
            watchdog; ``None`` otherwise.
    """

    def __init__(
        self,
        message: str,
        *,
        wait_reasons: Optional[Mapping[str, int]] = None,
        stalled_checks: int = 0,
        at_time: int = 0,
        wall_elapsed: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.wait_reasons: Dict[str, int] = dict(wait_reasons or {})
        self.stalled_checks = stalled_checks
        self.at_time = at_time
        self.wall_elapsed = wall_elapsed

    def to_triage(self) -> Dict[str, Any]:
        """The stall as one JSON-ready triage payload."""
        payload: Dict[str, Any] = {
            "at_time": self.at_time,
            "stalled_checks": self.stalled_checks,
            "wait_reasons": dict(self.wait_reasons),
        }
        if self.wall_elapsed is not None:
            payload["wall_elapsed"] = round(self.wall_elapsed, 3)
        return payload


class StallWatchdog:
    """Detect no-progress windows; raise :class:`StallError` with a
    wait-reason histogram instead of letting the run burn its budget.

    Args:
        progress: returns the current progress fingerprint — any
            equality-comparable value that changes when the run does
            something *useful* (e.g. ``lambda: len(record.deliveries)``).
            Productive-looking churn that never moves the fingerprint is
            exactly what the watchdog exists to catch.
        window: consecutive no-change checks tolerated before the
            watchdog declares a stall.  Checks happen once per round
            (round drivers) or once per supervision tick (async driver),
            so the window is in round units either way.
        wait_reasons: returns the wait-reason histogram to attach to the
            :class:`StallError` (typically a closure over the tracer).
            ``None`` attaches an empty histogram.
        grace: logical time before which the watchdog never fires —
            pass the settle horizon: detector-blocked idling during
            stabilization is convergence, not a stall.
        wall_budget: optional wall-clock seconds since the last progress
            after which the watchdog fires regardless of the round
            window — the backstop for wall-clock async runs where a hung
            loop stops producing checks of its own.
        clock: wall-clock source (injectable for tests); defaults to
            :func:`time.monotonic`.
    """

    def __init__(
        self,
        progress: Callable[[], Any],
        *,
        window: int = 64,
        wait_reasons: Optional[Callable[[], Mapping[str, int]]] = None,
        grace: int = 0,
        wall_budget: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if window < 1:
            raise SimulationError("watchdog window must be >= 1 check")
        if wall_budget is not None and wall_budget <= 0:
            raise SimulationError("watchdog wall_budget must be positive")
        self.progress = progress
        self.window = int(window)
        self.wait_reasons = wait_reasons
        self.grace = int(grace)
        self.wall_budget = wall_budget
        self._clock = clock or _time.monotonic
        self._last: Any = progress()
        self._idle = 0
        self._last_wall = self._clock()

    def _histogram(self) -> Dict[str, int]:
        if self.wait_reasons is None:
            return {}
        return dict(self.wait_reasons())

    def check(self, t: int) -> None:
        """One probe at logical time ``t``; raises on a detected stall."""
        current = self.progress()
        if current != self._last:
            self._last = current
            self._idle = 0
            self._last_wall = self._clock()
            return
        if t <= self.grace:
            return
        self._idle += 1
        if self._idle >= self.window:
            raise StallError(
                f"no progress for {self._idle} checks (t={t}, "
                f"window={self.window}) — stalled run cut short",
                wait_reasons=self._histogram(),
                stalled_checks=self._idle,
                at_time=t,
            )
        if self.wall_budget is not None:
            elapsed = self._clock() - self._last_wall
            if elapsed >= self.wall_budget:
                raise StallError(
                    f"no progress for {elapsed:.1f}s of wall time "
                    f"(t={t}, budget={self.wall_budget}s) — stalled run "
                    f"cut short",
                    wait_reasons=self._histogram(),
                    stalled_checks=self._idle,
                    at_time=t,
                    wall_elapsed=elapsed,
                )

    def stop_when(self, now: Callable[[], int]) -> Callable[[], bool]:
        """Adapt the watchdog to a driver's ``stop_when`` slot.

        The returned probe never asks the driver to stop — it *raises*
        on a stall (a stall is an error, not a quiet early exit), and
        returns ``False`` otherwise.  ``now`` supplies the driver's
        logical clock.
        """

        def probe() -> bool:
            self.check(now())
            return False

        return probe
