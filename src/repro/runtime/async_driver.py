"""The asynchronous driver: the same actors, under real (or virtual) time.

Where the :class:`repro.runtime.scheduler.Scheduler` advances a logical
clock in lockstep and shuffles the eligible set once per round, the
:class:`AsyncDriver` runs every actor of an
:class:`repro.runtime.core.ExecutionCore` as its own asyncio task and
lets *time* interleave them: each cross-process wake travels through an
in-memory channel (:class:`AsyncTransport`) whose latency is drawn from
a pluggable :class:`repro.runtime.delay.DelayModel`, and each process
pauses a model-drawn scheduling latency between consecutive steps.  The
paper's model is exactly this — shared-object operations linearize
(asyncio's cooperative scheduling makes every ``fire`` atomic), but the
*schedule* is asynchronous — so a driver run is just another admissible
run of Algorithm 1, and the §2.2 property checkers judge it unchanged.

Time is bilingual.  The driver's wall clock (real, or a seeded
:class:`repro.runtime.clock.VirtualClock`) advances continuously; the
model-facing *logical* time is ``t = floor(elapsed / round_duration) +
1``, so crash times, detector lags and settle horizons — all defined in
round units — keep their meaning.  The host's scheduler clock is synced
to logical time before every fire, so records, quorum guards and
detector queries see a monotone clock.

Fault plans carry over: the driver maps the injector's link verdicts
onto channel perturbations (``link_delay`` adds rounds of latency to a
wake, ``link_drop`` drops it and re-delivers at the fair-lossy
retransmission time, duplication is a harmless extra wake) and honours
participation churn by putting suppressed actors to sleep through their
windows.  Detector noise already applies inside the host's oracles.

What the golden suite does *not* pin here: wall-clock interleavings are
real nondeterminism, so two async runs may order concurrent deliveries
differently.  The differential agreement suite pins what must hold
regardless — delivery sets and property verdicts — and the virtual
clock pins full byte-determinism for replay.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.model.errors import SimulationError
from repro.model.failures import Time
from repro.runtime.clock import VirtualClock
from repro.runtime.core import ExecutionCore, Key
from repro.runtime.delay import DelayModel, build_delay_model
from repro.runtime.scheduler import RunOutcome

#: Clock sources the driver accepts.
CLOCK_MODES = ("virtual", "wall")

#: Floor on the pacing sleep between consecutive steps of one actor
#: (round units).  Keeps a productive actor from monopolizing the loop
#: at one virtual instant — time must move for crashes and detector
#: transitions to mean anything.
MIN_PACE = 0.125

#: How long a parked actor waits on its channel before re-checking its
#: wait condition anyway (round units).  A pure liveness backstop: with
#: correct wake accounting the event always arrives first.
POLL_ROUNDS = 4.0


def derive_async_seed(seed: int, delay_spec: Any) -> int:
    """The driver RNG seed: a pure function of (run seed, delay spec).

    Mirrors :func:`repro.faults.injector.derive_injector_seed`: latency
    randomness must never touch the host's schedule RNG, and a virtual
    clock replay must redraw the identical latency stream.
    """
    blob = f"async:{seed}:{delay_spec!r}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


class RetransmitPolicy:
    """Seeded exponential backoff with jitter and a bounded budget.

    Governs the driver's ack/retransmit resilience layer: when the
    fault plan drops a wake, the sender schedules up to ``budget``
    optimistic retransmissions at exponentially growing, jittered
    offsets, plus the *unconditional* fair-lossy landing at the lossy
    window's close.  All randomness is drawn from the driver's private
    RNG, so the ladder is byte-deterministic under
    :class:`repro.runtime.clock.VirtualClock`.

    Attributes:
        base: first backoff offset, in round units.
        factor: multiplicative growth per retry.
        jitter: fraction of the offset randomized per retry (``0.25``
            means each offset stretches by up to 25%).
        budget: maximum optimistic retransmissions per dropped wake
            (the fair-lossy backstop is never part of the budget).
    """

    __slots__ = ("base", "factor", "jitter", "budget")

    def __init__(
        self,
        base: float = 0.5,
        factor: float = 2.0,
        jitter: float = 0.25,
        budget: int = 3,
    ) -> None:
        if base <= 0 or factor < 1.0 or budget < 0 or not 0 <= jitter <= 1:
            raise SimulationError(
                "retransmit policy needs base > 0, factor >= 1, "
                "budget >= 0 and jitter in [0, 1]"
            )
        self.base = float(base)
        self.factor = float(factor)
        self.jitter = float(jitter)
        self.budget = int(budget)

    def offsets(self, rng: random.Random) -> List[float]:
        """Cumulative backoff offsets (round units) of each retry."""
        delay, elapsed, out = self.base, 0.0, []
        for _ in range(self.budget):
            elapsed += delay * (1.0 + self.jitter * rng.random())
            out.append(elapsed)
            delay *= self.factor
        return out


class AsyncTransport:
    """In-memory wake channels: one event per actor, deliveries timed.

    The engine's shared objects stand in for the payload network (state
    is linearizable the instant it is written); what the transport
    carries is *visibility* — the wake that tells a reader its wait
    condition may have changed.  A delivery scheduled ``latency`` ahead
    means the reader will not notice the write before then, which is
    precisely a channel delay in the shared-memory reading of the model.
    """

    def __init__(self, loop: Any, keys: Sequence[Key]) -> None:
        self._loop = loop
        self.events: Dict[Key, asyncio.Event] = {
            key: asyncio.Event() for key in keys
        }
        #: Wakes scheduled but not yet landed — nonzero means the system
        #: is *not* quiescent no matter how idle it looks.
        self.in_flight = 0
        self.delivered = 0
        #: Resilience-layer accounting (see :meth:`deliver_with_retries`):
        #: retransmissions scheduled, acks observed (first landing of a
        #: laddered wake), and retries the ack cancelled.
        self.stats: Dict[str, int] = {
            "retries_scheduled": 0,
            "retries_lost": 0,
            "acked": 0,
            "retries_cancelled": 0,
        }

    def deliver_now(self, key: Key) -> None:
        """Zero-latency wake (local events: injection, detector ticks)."""
        event = self.events.get(key)
        if event is not None:
            event.set()

    def deliver_at(self, when: float, key: Key) -> None:
        """Schedule a wake to land at loop time ``when``."""
        if key not in self.events:
            return
        self.in_flight += 1
        self._loop.call_at(when, self._land, key)

    def deliver_with_retries(
        self, whens: Sequence[float], key: Key
    ) -> None:
        """Schedule one wake with a retransmission ladder.

        ``whens`` are the attempt instants (loop times) — the bounded
        optimistic retransmissions plus the unconditional fair-lossy
        backstop.  The first attempt to land delivers the wake and
        *acks* it, cancelling every later rung; cancelled rungs are
        retransmissions the ack made unnecessary.  Exactly one landing
        happens per call, so ``in_flight`` stays exact.
        """
        if key not in self.events or not whens:
            return
        self.in_flight += 1
        ordered = sorted(whens)
        self.stats["retries_scheduled"] += len(ordered) - 1
        handles: List[Any] = []

        def _ack(which: int) -> None:
            self.stats["acked"] += 1
            for i, handle in enumerate(handles):
                if i != which:
                    handle.cancel()
                    self.stats["retries_cancelled"] += 1
            self._land(key)

        for i, when in enumerate(ordered):
            handles.append(self._loop.call_at(when, _ack, i))

    def _land(self, key: Key) -> None:
        self.in_flight -= 1
        self.delivered += 1
        self.events[key].set()

    async def wait(self, key: Key, timeout: float) -> None:
        """Park on ``key``'s channel until a wake (or the timeout)."""
        event = self.events[key]
        try:
            await asyncio.wait_for(event.wait(), timeout)
        except (asyncio.TimeoutError, TimeoutError):
            pass
        event.clear()


class AsyncDriver:
    """Drive a :class:`repro.core.MulticastSystem` under asynchrony.

    Args:
        system: the engine deployment to drive.  The driver reuses the
            system's :class:`ExecutionCore` (actors, eligibility,
            responders, settle horizon) and installs itself as the
            system's wake listener for the duration of :meth:`run`.
        delay_model: a :class:`DelayModel`, a delay spec tuple, or
            ``None`` for the default (see :mod:`repro.runtime.delay`).
        round_duration: wall seconds per round unit.  Virtual-clock runs
            conventionally use 1.0 (time is free); wall-clock runs pick
            the real pacing.
        clock: ``"virtual"`` (seeded-deterministic, the default) or
            ``"wall"`` (real time, real nondeterminism).
        seed: scenario seed; the driver derives its private latency RNG
            from ``(seed, delay spec)``.
        retransmit: the :class:`RetransmitPolicy` of the resilience
            layer (``None`` = defaults).  Only consulted when the fault
            plan drops a wake.
    """

    def __init__(
        self,
        system: Any,
        *,
        delay_model: Any = None,
        round_duration: float = 1.0,
        clock: str = "virtual",
        seed: int = 0,
        retransmit: Optional[RetransmitPolicy] = None,
    ) -> None:
        if clock not in CLOCK_MODES:
            raise SimulationError(
                f"unknown clock {clock!r}; expected one of {CLOCK_MODES}"
            )
        if round_duration <= 0:
            raise SimulationError("round_duration must be positive")
        self.system = system
        self._sched = system._scheduler
        self.core: ExecutionCore = self._sched.core
        self.injector = system.injector
        self.delay: DelayModel = (
            delay_model
            if isinstance(delay_model, DelayModel)
            else build_delay_model(delay_model)
        )
        self.round_duration = float(round_duration)
        self.clock = clock
        self.rng = random.Random(derive_async_seed(seed, self.delay.spec()))
        self.retransmit = retransmit or RetransmitPolicy()
        #: Transport resilience stats of the last completed run (the
        #: transport itself is torn down at run end).
        self.last_transport_stats: Dict[str, int] = {}
        #: Index of the first send not yet handed to ``issue`` when the
        #: run ended (everything before it was issued or skipped).
        self.sends_cursor = 0
        self._loop: Any = None
        self._transport: Optional[AsyncTransport] = None
        self._current: Optional[Key] = None
        self._t0 = 0.0
        self._fired_window = 0
        self._total_fired = 0
        self._quiescent = False
        self._stop: Optional[asyncio.Event] = None

    # -- Time --------------------------------------------------------------

    def now_t(self) -> Time:
        """Logical (round-unit) time of the driving clock."""
        elapsed = self._loop.time() - self._t0
        return int(elapsed / self.round_duration + 1e-9) + 1

    def _sync_time(self, t: Time) -> None:
        """Push logical time into the host's scheduler clock (monotone:
        ``now_t`` never decreases and equal pushes are no-ops)."""
        if t > self._sched.time:
            self._sched.time = t

    # -- Wake plumbing -----------------------------------------------------

    def _on_wake(self, woken: Any) -> None:
        """The host dirtied ``woken`` readers: route wakes through the
        channels.  Called synchronously from inside a fire (writer known)
        or from driver-level events like send injection (writer None)."""
        transport = self._transport
        if transport is None:
            return
        src = self._current
        if src is None:
            for dst in woken:
                transport.deliver_now(dst)
            return
        now = self._loop.time()
        t = self.now_t()
        for dst in woken:
            if dst == src:
                # The writer re-checks itself on its next loop turn.
                continue
            self._deliver(src, dst, t, now)

    def _deliver(self, src: Key, dst: Key, t: Time, now: float) -> None:
        """Route one wake through the channel model + resilience layer."""
        transport = self._transport
        rd = self.round_duration
        latency = self.delay.latency(src.index, dst.index, self.rng)
        if self.injector is not None:
            verdict = self.injector.on_send(src.index, dst.index, t)
            if verdict.dropped:
                transport.deliver_with_retries(
                    self._retry_ladder(src, dst, t, verdict, latency), dst
                )
                return
            latency += float(verdict.delay)
            # Duplicated wakes would be harmless no-ops on an event
            # channel; the verdict's copies need no realization.
        transport.deliver_at(now + max(latency, 0.0) * rd, dst)

    def _retry_ladder(
        self,
        src: Key,
        dst: Key,
        t: Time,
        verdict: Any,
        latency: float,
    ) -> List[float]:
        """Attempt instants (loop times) for one dropped wake.

        The ladder holds every bounded backoff retransmission whose
        probe time faces a *clear* channel
        (:meth:`repro.faults.FaultInjector.link_clear` — attempts
        inside the lossy window are lost and not scheduled), plus the
        unconditional fair-lossy landing at the window close.  The
        earliest rung acks the rest, so with a clear early retry the
        wake lands *before* the heal-time backstop — graceful
        degradation the round hosts cannot express.
        """
        transport = self._transport
        rd = self.round_duration
        now = self._loop.time()
        final = (
            now
            + (max(float(verdict.retransmit_at - t), 1.0) + latency) * rd
        )
        ladder = [final]
        for offset in self.retransmit.offsets(self.rng):
            when = now + (1.0 + offset + latency) * rd
            if when >= final:
                break
            probe_t = t + 1 + int(offset)
            if self.injector.link_clear(src.index, dst.index, probe_t):
                ladder.append(when)
                break
            transport.stats["retries_lost"] += 1
        return ladder

    def _pace(self, key: Key) -> float:
        """Scheduling latency between consecutive steps of ``key``."""
        return max(
            self.delay.latency(key.index, key.index, self.rng), MIN_PACE
        )

    # -- Tasks -------------------------------------------------------------

    async def _actor(self, key: Key) -> None:
        core = self.core
        actor = core.actors[key]
        transport = self._transport
        rd = self.round_duration
        injector = core.injector
        while not self._stop.is_set():
            t = self.now_t()
            if not core.is_alive(key, t):
                rejoin = self.system.pattern.recovery_times.get(key)
                if rejoin is None or rejoin <= t:
                    return  # crash-stop: the task retires
                # Crash-recovery: park until the rejoin instant.  The
                # actor's in-memory state stands in for the durable
                # substrate snapshot (the kernel backend exercises the
                # explicit snapshot/restore path).
                target = self._t0 + (rejoin - 1) * rd
                await asyncio.sleep(max(target - self._loop.time(), rd))
                continue
            if injector is not None and injector.suppresses(key, t):
                # Participation churn: sleep through the window.
                await asyncio.sleep(rd)
                continue
            if t <= core.settle_horizon() or not actor.parked(t):
                # Forced scans while detectors may still move mirror the
                # round driver's full-scan window.
                self._sync_time(t)
                self._current = key
                try:
                    fired = actor.fire(t, None, None)
                finally:
                    self._current = None
                self._fired_window += fired
                self._total_fired += fired
                await asyncio.sleep(self._pace(key) * rd)
                continue
            await transport.wait(key, POLL_ROUNDS * rd)

    async def _inject(
        self,
        pending: Sequence[Any],
        issue: Optional[Callable[[Any, Time], None]],
    ) -> None:
        """Issue each scripted send at the logical time the round driver
        would have: ``t == at_round`` (clamped to the async clock's
        t >= 1), so alive-at-issue races agree across backends."""
        loop = self._loop
        rd = self.round_duration
        for send in pending:
            target = max(send.at_round - 1, 0) * rd
            remaining = self._t0 + target - loop.time()
            if remaining > 0:
                await asyncio.sleep(remaining)
            t = self.now_t()
            self._sync_time(t)
            self.sends_cursor += 1
            if issue is not None:
                issue(send, t)

    async def _supervise(
        self,
        pending: Sequence[Any],
        max_rounds: int,
        quiescent_rounds: int,
        watchdog: Optional[Any] = None,
    ) -> None:
        try:
            await self._supervise_loop(
                pending, max_rounds, quiescent_rounds, watchdog
            )
        finally:
            # Whatever ends supervision — quiescence, budget, a raising
            # watchdog — the run must unwind rather than hang on _stop.
            self._stop.set()

    async def _supervise_loop(
        self,
        pending: Sequence[Any],
        max_rounds: int,
        quiescent_rounds: int,
        watchdog: Optional[Any],
    ) -> None:
        core = self.core
        transport = self._transport
        rd = self.round_duration
        idle = 0
        # Crash *and* recovery instants: a rejoin changes quorum
        # availability just as a crash does, so it forces wakes too.
        crash_instants = list(self.system.pattern.change_instants())
        instant_cursor = 0
        while True:
            await asyncio.sleep(rd)
            t = self.now_t()
            self._sync_time(t)
            eligible = core.eligible_order(t)
            core.refresh_responders(t, tuple(eligible), None)
            # Record participation transitions exactly like the round
            # drivers do, so async runs carry the same interleaving
            # fingerprint stream the explorer uses as coverage.
            core.note_fingerprint(tuple(eligible))
            # Forced wakes: the async analogue of the round driver's
            # full-scan triggers — detector settle window, and crossings
            # of crash instants (quorum availability changed).
            woke = False
            while (
                instant_cursor < len(crash_instants)
                and crash_instants[instant_cursor] <= t
            ):
                instant_cursor += 1
                woke = True
            if woke or t <= core.settle_horizon() + 1:
                for key in eligible:
                    transport.deliver_now(key)
            if watchdog is not None:
                watchdog.check(t)
            if t >= max_rounds:
                self._quiescent = False
                break
            window, self._fired_window = self._fired_window, 0
            busy = (
                window > 0
                or transport.in_flight > 0
                or self.sends_cursor < len(pending)
                or t < core.settle_horizon()
                or core.has_pending_work()
            )
            if not busy and self._all_parked(t, eligible):
                idle += 1
                if idle >= quiescent_rounds:
                    self._quiescent = True
                    break
            else:
                idle = 0

    def _all_parked(self, t: Time, eligible: Sequence[Key]) -> bool:
        transport = self._transport
        for key in eligible:
            if transport.events[key].is_set():
                return False  # an unconsumed wake: someone will act
            if not self.core.actors[key].parked(t):
                return False
        return True

    # -- Entry point -------------------------------------------------------

    def run(
        self,
        *,
        sends: Sequence[Any] = (),
        issue: Optional[Callable[[Any, Time], None]] = None,
        max_rounds: int = 600,
        quiescent_rounds: int = 2,
        watchdog: Optional[Any] = None,
    ) -> RunOutcome:
        """Run to quiescence (or the logical-round budget).

        ``sends`` is the scripted workload sorted by ``at_round``; the
        driver calls ``issue(send, t)`` when logical time reaches each
        instruction (the callback owns skip accounting and the actual
        multicast).  Returns a :class:`RunOutcome` whose ``rounds`` is
        the logical time reached — directly comparable with the round
        driver's budget accounting.
        """
        pending = sorted(sends, key=lambda s: s.at_round)
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            if self.clock == "virtual":
                VirtualClock().install(loop)
            return loop.run_until_complete(
                self._main(
                    pending, issue, max_rounds, quiescent_rounds, watchdog
                )
            )
        finally:
            if self._transport is not None:
                self.last_transport_stats = dict(self._transport.stats)
            self.system.wake_listener = None
            self._loop = None
            self._transport = None
            loop.close()

    async def _main(
        self,
        pending: Sequence[Any],
        issue: Optional[Callable[[Any, Time], None]],
        max_rounds: int,
        quiescent_rounds: int,
        watchdog: Optional[Any] = None,
    ) -> RunOutcome:
        loop = self._loop
        core = self.core
        self._t0 = loop.time()
        self._stop = asyncio.Event()
        self._transport = AsyncTransport(loop, core.sorted_keys)
        self.system.wake_listener = self._on_wake
        self._fired_window = 0
        self._total_fired = 0
        self._quiescent = False
        self.sends_cursor = 0
        # The injection task is created first: asyncio runs tasks in
        # creation order, so sends due at the clock's first instant are
        # issued before any actor fires — as the round loop does.
        tasks: List[asyncio.Task] = [
            loop.create_task(self._inject(pending, issue))
        ]
        tasks.extend(
            loop.create_task(self._actor(key)) for key in core.sorted_keys
        )
        supervisor = loop.create_task(
            self._supervise(pending, max_rounds, quiescent_rounds, watchdog)
        )
        await self._stop.wait()
        final_t = min(self.now_t(), max_rounds)
        for task in tasks:
            task.cancel()
        supervisor.cancel()
        results = await asyncio.gather(
            *tasks, supervisor, return_exceptions=True
        )
        for result in results:
            if isinstance(result, Exception) and not isinstance(
                result, asyncio.CancelledError
            ):
                raise result
        self._sync_time(final_t)
        self._sched.last_run_quiescent = self._quiescent
        return RunOutcome(
            rounds=final_t,
            quiescent=self._quiescent,
            fired=self._total_fired,
        )


__all__ = [
    "AsyncDriver",
    "AsyncTransport",
    "CLOCK_MODES",
    "RetransmitPolicy",
    "derive_async_seed",
]
