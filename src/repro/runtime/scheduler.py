"""The round driver — the lockstep loop of every golden-pinned run.

Before this layer existed the repo ran the paper's constructions on two
parallel-evolved loops: the round-based shared-object engine
(:mod:`repro.core.engine`, Algorithm 1 and the §5/§6 emulations) and the
step-level Appendix-A kernel (:mod:`repro.sim.kernel`, the §4.3
message-passing substrates).  Both implemented the same per-round
contract — advance the clock, filter the alive processes inside the
participation set, shuffle them with the seeded RNG, dispatch, account
the round in the tracer, detect quiescence — with independently drifting
semantics.  The :class:`Scheduler` owns that contract once, in the
spirit of the single linearized-action model the paper reasons on
(§4.4): a run is a sequence of atomic actions under an adversarially
shuffled yet reproducible schedule.

Since the ``backend="async"`` refactor the schedule-independent half of
that contract — the actor registry, the alive ∩ participation filter,
responder/quorum accounting, quiescence inputs — lives in
:class:`repro.runtime.core.ExecutionCore`; this module keeps what is
genuinely *round-shaped*: the +1 logical clock, the one-shuffle-per-
round RNG discipline, the full-scan forcing rules and the lockstep
quiescence loop.  :class:`repro.runtime.async_driver.AsyncDriver` runs
the same core (and the same actors) under real or virtual time instead.

Hosts adapt their unit of execution to the small :class:`Actor`
protocol (see :mod:`repro.runtime.actors`) and keep their public APIs as
thin delegations.  Two invariants make that safe:

* **RNG compatibility** — the scheduler draws from the RNG exactly as
  the seed loops did: one shuffle of the sorted eligible set per round,
  nothing else.  Parked actors are skipped *after* the shuffle, so the
  schedule of the actors that do act — and therefore every
  :class:`repro.model.RunRecord` trace — is byte-identical to a
  scan-everything run (``tests/runtime`` holds the pre-refactor golden
  fingerprints that pin this down).

* **Skip soundness** — an actor is skipped only when (a) the round is
  not a *full scan* and (b) the actor reports :meth:`Actor.parked`.
  Full scans are forced while ``time <= settle_horizon()`` (detector
  outputs may still move), whenever the (scheduled, responder) set pair
  changes (quorum availability), in ``scheduling="scan"`` mode, and on
  non-positive action budgets — the same conservative fallbacks the
  event-driven engine introduced in PR 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
)

from repro.metrics.trace import TraceRecorder
from repro.model.errors import SimulationError
from repro.model.failures import Time
from repro.runtime.core import Actor, ExecutionCore, Key

#: Supported scheduling modes (also re-exported by repro.core.engine).
SCHEDULING_MODES = ("event", "scan")


@dataclass(frozen=True)
class RunOutcome:
    """What one :meth:`Scheduler.run` call actually did.

    Attributes:
        rounds: rounds executed (<= the ``max_rounds`` budget).
        quiescent: whether the run ended in quiescence — ``False`` means
            the round budget (or a ``stop_when`` predicate) cut it short
            and the run proves nothing about termination.
        fired: total productive actions across all rounds.
    """

    rounds: int
    quiescent: bool
    fired: int


class Scheduler:
    """The round driver: lockstep rounds over an :class:`ExecutionCore`.

    Args:
        actors: the schedulable units, keyed by a sortable identity
            (``ProcessId`` for per-process hosts).
        rng: the seeded schedule source; the round driver is its only
            consumer.
        tracer: per-round counters (see :mod:`repro.metrics.trace`).
        is_alive: ``(key, t) -> bool`` — crash filtering; keys failing
            it are not scheduled at all.
        scheduling: ``"event"`` (skip parked actors) or ``"scan"``
            (scan everything — the seed engines' behaviour).
        settle_horizon: callable returning the time by which detector
            outputs have stabilized; full scans are forced up to it and
            quiescence is only trusted past it.
        pre_round: optional hook run right after the clock advances and
            before eligibility is computed (crash-time cleanup).
        responders: initial responder set (processes able to answer
            quorum requests), before any round has run.
        injector: optional :class:`repro.faults.FaultInjector`; its
            :meth:`~repro.faults.FaultInjector.suppresses` hook models
            participation churn — a suppressed actor takes no step this
            round (finite asynchrony: churn windows are bounded, so
            fairness holds in the suffix).  ``None`` leaves every code
            path byte-identical to the fault-free scheduler.
        alive_instants: optional times at which ``is_alive`` answers can
            change (the host's crash instants).  When given, the default
            eligibility filter is recomputed only when the clock crosses
            an instant instead of once per round — with hundreds of
            actors the per-round alive sweep dominates scheduling cost.
            ``None`` preserves the per-round filter.
        pending_work: optional callable returning the amount of work the
            actors cannot see yet but that is still due — e.g. datagrams
            a link fault holds sequestered in the message buffer's delay
            heap.  A round with zero productive actions does **not**
            count toward quiescence while this reports nonzero: the
            hidden work will re-enable an actor when it lands, so
            declaring quiescence over it would truncate the run
            mid-perturbation.  ``None`` (fault-free hosts) keeps the
            check byte-identical to the seed behaviour.
    """

    def __init__(
        self,
        actors: Mapping[Key, Actor],
        rng: random.Random,
        tracer: TraceRecorder,
        is_alive: Callable[[Key, Time], bool],
        scheduling: str = "event",
        settle_horizon: Optional[Callable[[], Time]] = None,
        pre_round: Optional[Callable[[Time], None]] = None,
        responders: Optional[FrozenSet[Key]] = None,
        injector: Optional[Any] = None,
        pending_work: Optional[Callable[[], int]] = None,
        alive_instants: Optional[Iterable[Time]] = None,
    ) -> None:
        if scheduling not in SCHEDULING_MODES:
            raise SimulationError(f"unknown scheduling mode {scheduling!r}")
        self.core = ExecutionCore(
            actors,
            tracer,
            is_alive,
            settle_horizon=settle_horizon,
            pre_round=pre_round,
            responders=responders,
            injector=injector,
            pending_work=pending_work,
            alive_instants=alive_instants,
        )
        self._rng = rng
        self.scheduling = scheduling
        self.time: Time = 0
        #: Whether the most recent :meth:`run` ended in quiescence; True
        #: before any run call — nothing has been cut short yet.
        self.last_run_quiescent: bool = True

    @property
    def tracer(self) -> TraceRecorder:
        return self.core.tracer

    @property
    def responders(self) -> FrozenSet[Key]:
        """Actors able to answer quorum requests right now."""
        return self.core.responders

    # -- One round ---------------------------------------------------------

    def round(
        self,
        participation: Optional[Iterable[Key]] = None,
        responders: Optional[Iterable[Key]] = None,
        action_budget: Optional[int] = None,
    ) -> int:
        """One round: advance the clock, let eligible actors act.

        ``participation`` restricts who *acts* this round; ``responders``
        (defaulting to the participation set) restricts who may answer
        quorum requests — CHT-style simulated runs schedule one actor
        per step while the other scheduled processes still serve
        quorums.  ``action_budget`` caps actions per actor per round
        (finest interleaving = 1).  Returns the number of productive
        actions fired across the system.
        """
        self.time += 1
        core = self.core
        if core.pre_round is not None:
            core.pre_round(self.time)
        order = core.eligible_order(self.time, participation)
        # ``order`` is already sorted (it filters the pre-sorted keys);
        # snapshot it before the shuffle for fingerprinting.
        eligible = tuple(order)
        core.refresh_responders(self.time, eligible, responders)
        self._rng.shuffle(order)
        fingerprint_changed = core.note_fingerprint(eligible)
        full_scan = (
            self.scheduling == "scan"
            or self.time <= core.settle_horizon()
            or fingerprint_changed
            or (action_budget is not None and action_budget <= 0)
        )
        tracer = core.tracer
        tracer.begin_round(self.time, len(order), full_scan)
        fired = 0
        parked_hint = None if full_scan else False
        actors = core.actors
        for key in order:
            actor = actors[key]
            if not full_scan and actor.parked(self.time):
                tracer.note_skipped()
                for reason in actor.SKIP_WAIT:
                    tracer.note_wait(reason)
                continue
            count = actor.fire(self.time, action_budget, parked_hint)
            fired += count
            tracer.note_scanned(count)
            if count == 0:
                for reason in actor.wait_reasons():
                    tracer.note_wait(reason)
        tracer.end_round()
        return fired

    # -- Many rounds -------------------------------------------------------

    def settle_horizon(self) -> Time:
        """The host's detector-stabilization time (0 when none)."""
        return self.core.settle_horizon()

    def run(
        self,
        max_rounds: int = 500,
        participation: Optional[Iterable[Key]] = None,
        quiescent_rounds: int = 2,
        stop_when: Optional[Callable[[], bool]] = None,
        halt_on_quiescence: bool = True,
    ) -> RunOutcome:
        """Run rounds until quiescence (or ``max_rounds``).

        Quiescence requires ``quiescent_rounds`` consecutive rounds with
        zero productive actions *after* the settle horizon, since
        actions blocked on a detector may re-enable when it settles.
        An idle round also does not count while the host's
        ``pending_work`` hook reports outstanding hidden work (e.g.
        fault-delayed datagrams still due for release): quiescence over
        a non-empty delay heap would be a lie.  With
        ``halt_on_quiescence=False`` the budget is always executed
        in full (the legacy kernel contract) and the outcome reports
        whether the run *ended* quiescent.  ``stop_when`` is evaluated
        after every round and cuts the run short without claiming
        quiescence.
        """
        idle = 0
        rounds = 0
        total_fired = 0
        quiescent = False
        core = self.core
        while rounds < max_rounds:
            fired = self.round(participation)
            total_fired += fired
            rounds += 1
            if (
                fired == 0
                and self.time >= core.settle_horizon()
                and not core.has_pending_work()
            ):
                idle += 1
                if idle >= quiescent_rounds and halt_on_quiescence:
                    quiescent = True
                    break
            else:
                idle = 0
            if stop_when is not None and stop_when():
                break
        if not quiescent:
            quiescent = idle >= quiescent_rounds
        self.last_run_quiescent = quiescent
        return RunOutcome(rounds=rounds, quiescent=quiescent, fired=total_fired)


#: The round-based driver by its role name; :class:`Scheduler` is the
#: historical alias every host constructs.
RoundDriver = Scheduler
