"""The shared round scheduler — the one hot loop of the reproduction.

Before this layer existed the repo ran the paper's constructions on two
parallel-evolved loops: the round-based shared-object engine
(:mod:`repro.core.engine`, Algorithm 1 and the §5/§6 emulations) and the
step-level Appendix-A kernel (:mod:`repro.sim.kernel`, the §4.3
message-passing substrates).  Both implemented the same per-round
contract — advance the clock, filter the alive processes inside the
participation set, shuffle them with the seeded RNG, dispatch, account
the round in the tracer, detect quiescence — with independently drifting
semantics.  The :class:`Scheduler` owns that contract once, in the
spirit of the single linearized-action model the paper reasons on
(§4.4): a run is a sequence of atomic actions under an adversarially
shuffled yet reproducible schedule.

Hosts adapt their unit of execution to the small :class:`Actor`
protocol (see :mod:`repro.runtime.actors`) and keep their public APIs as
thin delegations.  Two invariants make that safe:

* **RNG compatibility** — the scheduler draws from the RNG exactly as
  the seed loops did: one shuffle of the sorted eligible set per round,
  nothing else.  Parked actors are skipped *after* the shuffle, so the
  schedule of the actors that do act — and therefore every
  :class:`repro.model.RunRecord` trace — is byte-identical to a
  scan-everything run (``tests/runtime`` holds the pre-refactor golden
  fingerprints that pin this down).

* **Skip soundness** — an actor is skipped only when (a) the round is
  not a *full scan* and (b) the actor reports :meth:`Actor.parked`.
  Full scans are forced while ``time <= settle_horizon()`` (detector
  outputs may still move), whenever the (scheduled, responder) set pair
  changes (quorum availability), in ``scheduling="scan"`` mode, and on
  non-positive action budgets — the same conservative fallbacks the
  event-driven engine introduced in PR 1.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

from repro.metrics.trace import TraceRecorder
from repro.model.errors import SimulationError
from repro.model.failures import Time

#: Supported scheduling modes (also re-exported by repro.core.engine).
SCHEDULING_MODES = ("event", "scan")

#: Sortable actor key — a ProcessId for per-process hosts, a string for
#: whole-system hosts (baselines, emulation drivers).
Key = TypeVar("Key")


class Actor:
    """One schedulable unit: a process, or a whole subsystem.

    Adapters implement three verbs:

    * :meth:`parked` — whether skipping this actor in a non-full-scan
      round is provably a no-op.  The scheduler consults it *after* the
      shuffle, so parking never changes the RNG stream.
    * :meth:`fire` — take the actor's step(s); returns the number of
      *productive* actions (0 = the step provably changed nothing),
      which feeds both the tracer and quiescence detection.  The
      scheduler passes ``parked=False`` when its own skip check already
      proved the actor un-parked this round, so adapters whose
      productivity test *is* the parked test need not recompute it.
    * :meth:`wait_reasons` — why a scanned-but-idle actor is blocked
      (histogrammed into the round trace).

    ``SKIP_WAIT`` names the wait reasons recorded when the actor is
    skipped while parked (the kernel counts those as ``idle``; the
    engine records nothing).
    """

    SKIP_WAIT: Tuple[str, ...] = ()

    def parked(self, t: Time) -> bool:
        return False

    def fire(
        self,
        t: Time,
        budget: Optional[int] = None,
        parked: Optional[bool] = None,
    ) -> int:
        raise NotImplementedError

    def wait_reasons(self) -> Iterable[str]:
        return ()


@dataclass(frozen=True)
class RunOutcome:
    """What one :meth:`Scheduler.run` call actually did.

    Attributes:
        rounds: rounds executed (<= the ``max_rounds`` budget).
        quiescent: whether the run ended in quiescence — ``False`` means
            the round budget (or a ``stop_when`` predicate) cut it short
            and the run proves nothing about termination.
        fired: total productive actions across all rounds.
    """

    rounds: int
    quiescent: bool
    fired: int


class Scheduler:
    """Owns the per-round contract shared by every execution loop.

    Args:
        actors: the schedulable units, keyed by a sortable identity
            (``ProcessId`` for per-process hosts).
        rng: the seeded schedule source; the scheduler is its only
            consumer.
        tracer: per-round counters (see :mod:`repro.metrics.trace`).
        is_alive: ``(key, t) -> bool`` — crash filtering; keys failing
            it are not scheduled at all.
        scheduling: ``"event"`` (skip parked actors) or ``"scan"``
            (scan everything — the seed engines' behaviour).
        settle_horizon: callable returning the time by which detector
            outputs have stabilized; full scans are forced up to it and
            quiescence is only trusted past it.
        pre_round: optional hook run right after the clock advances and
            before eligibility is computed (crash-time cleanup).
        responders: initial responder set (processes able to answer
            quorum requests), before any round has run.
        injector: optional :class:`repro.faults.FaultInjector`; its
            :meth:`~repro.faults.FaultInjector.suppresses` hook models
            participation churn — a suppressed actor takes no step this
            round (finite asynchrony: churn windows are bounded, so
            fairness holds in the suffix).  ``None`` leaves every code
            path byte-identical to the fault-free scheduler.
        alive_instants: optional times at which ``is_alive`` answers can
            change (the host's crash instants).  When given, the default
            eligibility filter is recomputed only when the clock crosses
            an instant instead of once per round — with hundreds of
            actors the per-round alive sweep dominates scheduling cost.
            ``None`` preserves the per-round filter.
        pending_work: optional callable returning the amount of work the
            actors cannot see yet but that is still due — e.g. datagrams
            a link fault holds sequestered in the message buffer's delay
            heap.  A round with zero productive actions does **not**
            count toward quiescence while this reports nonzero: the
            hidden work will re-enable an actor when it lands, so
            declaring quiescence over it would truncate the run
            mid-perturbation.  ``None`` (fault-free hosts) keeps the
            check byte-identical to the seed behaviour.
    """

    def __init__(
        self,
        actors: Mapping[Key, Actor],
        rng: random.Random,
        tracer: TraceRecorder,
        is_alive: Callable[[Key, Time], bool],
        scheduling: str = "event",
        settle_horizon: Optional[Callable[[], Time]] = None,
        pre_round: Optional[Callable[[Time], None]] = None,
        responders: Optional[FrozenSet[Key]] = None,
        injector: Optional[Any] = None,
        pending_work: Optional[Callable[[], int]] = None,
        alive_instants: Optional[Iterable[Time]] = None,
    ) -> None:
        if scheduling not in SCHEDULING_MODES:
            raise SimulationError(f"unknown scheduling mode {scheduling!r}")
        self._actors: Dict[Key, Actor] = dict(actors)
        #: Keys in sorted order, fixed at construction: iterating this
        #: (filtered) yields the eligible set already sorted, replacing
        #: the per-round ``order.sort()`` of the seed loops with the
        #: byte-identical result.
        self._sorted_keys: Tuple[Key, ...] = tuple(sorted(self._actors))
        self._rng = rng
        self.tracer = tracer
        self._is_alive = is_alive
        self.scheduling = scheduling
        self._settle_horizon = settle_horizon or (lambda: 0)
        self._pre_round = pre_round
        self._injector = injector
        self._pending_work = pending_work
        self.time: Time = 0
        #: Whether the most recent :meth:`run` ended in quiescence; True
        #: before any run call — nothing has been cut short yet.
        self.last_run_quiescent: bool = True
        #: Actors able to answer quorum requests *right now*: the alive
        #: members of the last round's responder (or scheduled) set.
        self.responders: FrozenSet[Key] = responders or frozenset()
        #: Fingerprint of (scheduled set, responder set) of the last
        #: round; a change forces a full scan (quorum availability).
        #: Stored as the *sorted eligible list* plus the responder set —
        #: sorted-list equality is set equality without per-round
        #: hashing.
        self._fp_eligible: Optional[Tuple[Key, ...]] = None
        self._fp_responders: Optional[FrozenSet[Key]] = None
        #: Cache of the default (participation-derived) responder set, so
        #: steady-state rounds reuse one frozenset instead of rebuilding
        #: an identical one every round.
        self._default_eligible: Optional[Tuple[Key, ...]] = None
        self._default_responders: Optional[FrozenSet[Key]] = None
        #: Alive-filter memo: the filtered key list is a pure function of
        #: the crash epoch, so between crash instants the previous
        #: round's result is reused verbatim.
        self._alive_instants = (
            None if alive_instants is None else sorted(alive_instants)
        )
        self._alive_epoch: Optional[int] = None
        self._alive_order: Tuple[Key, ...] = ()

    # -- One round ---------------------------------------------------------

    def round(
        self,
        participation: Optional[Iterable[Key]] = None,
        responders: Optional[Iterable[Key]] = None,
        action_budget: Optional[int] = None,
    ) -> int:
        """One round: advance the clock, let eligible actors act.

        ``participation`` restricts who *acts* this round; ``responders``
        (defaulting to the participation set) restricts who may answer
        quorum requests — CHT-style simulated runs schedule one actor
        per step while the other scheduled processes still serve
        quorums.  ``action_budget`` caps actions per actor per round
        (finest interleaving = 1).  Returns the number of productive
        actions fired across the system.
        """
        self.time += 1
        if self._pre_round is not None:
            self._pre_round(self.time)
        is_alive, now = self._is_alive, self.time
        if participation is None:
            if self._alive_instants is not None:
                epoch = bisect_right(self._alive_instants, now)
                if epoch != self._alive_epoch:
                    self._alive_epoch = epoch
                    self._alive_order = tuple(
                        key
                        for key in self._sorted_keys
                        if is_alive(key, now)
                    )
                order = list(self._alive_order)
            else:
                order = [
                    key for key in self._sorted_keys if is_alive(key, now)
                ]
        else:
            order = [
                key
                for key in self._sorted_keys
                if is_alive(key, now) and key in participation
            ]
        if self._injector is not None:
            # Participation churn: suppressed actors take no step this
            # round and answer no quorum requests.  Filtered before the
            # shuffle — only faulted runs ever reach this branch, so the
            # fault-free RNG stream is untouched.
            order = [
                key
                for key in order
                if not self._injector.suppresses(key, self.time)
            ]
        # ``order`` is already sorted (it filters the pre-sorted keys);
        # snapshot it before the shuffle for fingerprinting.
        eligible = tuple(order)
        if responders is None:
            if eligible == self._default_eligible:
                self.responders = self._default_responders
            else:
                self.responders = frozenset(eligible)
                self._default_eligible = eligible
                self._default_responders = self.responders
        else:
            self.responders = frozenset(
                key
                for key in responders
                if self._is_alive(key, self.time)
                and (
                    self._injector is None
                    or not self._injector.suppresses(key, self.time)
                )
            )
        self._rng.shuffle(order)
        fingerprint_changed = eligible != self._fp_eligible or (
            self.responders is not self._fp_responders
            and self.responders != self._fp_responders
        )
        full_scan = (
            self.scheduling == "scan"
            or self.time <= self._settle_horizon()
            or fingerprint_changed
            or (action_budget is not None and action_budget <= 0)
        )
        self._fp_eligible = eligible
        self._fp_responders = self.responders
        self.tracer.begin_round(self.time, len(order), full_scan)
        fired = 0
        parked_hint = None if full_scan else False
        for key in order:
            actor = self._actors[key]
            if not full_scan and actor.parked(self.time):
                self.tracer.note_skipped()
                for reason in actor.SKIP_WAIT:
                    self.tracer.note_wait(reason)
                continue
            count = actor.fire(self.time, action_budget, parked_hint)
            fired += count
            self.tracer.note_scanned(count)
            if count == 0:
                for reason in actor.wait_reasons():
                    self.tracer.note_wait(reason)
        self.tracer.end_round()
        return fired

    # -- Many rounds -------------------------------------------------------

    def settle_horizon(self) -> Time:
        """The host's detector-stabilization time (0 when none)."""
        return self._settle_horizon()

    def run(
        self,
        max_rounds: int = 500,
        participation: Optional[Iterable[Key]] = None,
        quiescent_rounds: int = 2,
        stop_when: Optional[Callable[[], bool]] = None,
        halt_on_quiescence: bool = True,
    ) -> RunOutcome:
        """Run rounds until quiescence (or ``max_rounds``).

        Quiescence requires ``quiescent_rounds`` consecutive rounds with
        zero productive actions *after* the settle horizon, since
        actions blocked on a detector may re-enable when it settles.
        An idle round also does not count while the host's
        ``pending_work`` hook reports outstanding hidden work (e.g.
        fault-delayed datagrams still due for release): quiescence over
        a non-empty delay heap would be a lie.  With
        ``halt_on_quiescence=False`` the budget is always executed
        in full (the legacy kernel contract) and the outcome reports
        whether the run *ended* quiescent.  ``stop_when`` is evaluated
        after every round and cuts the run short without claiming
        quiescence.
        """
        idle = 0
        rounds = 0
        total_fired = 0
        quiescent = False
        while rounds < max_rounds:
            fired = self.round(participation)
            total_fired += fired
            rounds += 1
            if (
                fired == 0
                and self.time >= self._settle_horizon()
                and (self._pending_work is None or not self._pending_work())
            ):
                idle += 1
                if idle >= quiescent_rounds and halt_on_quiescence:
                    quiescent = True
                    break
            else:
                idle = 0
            if stop_when is not None and stop_when():
                break
        if not quiescent:
            quiescent = idle >= quiescent_rounds
        self.last_run_quiescent = quiescent
        return RunOutcome(rounds=rounds, quiescent=quiescent, fired=total_fired)
