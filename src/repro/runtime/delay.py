"""Wall-clock delay models for the asynchronous driver.

A :class:`DelayModel` answers one question: *how long does the channel
from process ``src`` to process ``dst`` take, in round units?*  The
:class:`repro.runtime.async_driver.AsyncDriver` multiplies the answer by
its ``round_duration`` to place wake deliveries on the event loop, and
uses the self-pair ``(i, i)`` as a process's local scheduling latency
between consecutive steps.

Models are addressed by *spec* — a flat JSON-able tuple such as
``("uniform", 0.1, 0.9)`` — so a scenario's delay axis lives inside its
:class:`repro.workloads.spec.ScenarioSpec` (schema v5) and hashes with
it.  All randomness flows through the RNG the caller passes (the async
driver derives one from the scenario seed, never touching the schedule
RNG), so a virtual-clock run is byte-replayable from its spec alone.

The three paper-motivated shapes:

* ``uniform`` — homogeneous jittery network (the default);
* ``exponential`` — heavy-tailed latencies, capped so fairness (every
  wake eventually lands) stays trivially true;
* ``slow_pairs`` — adversarial heterogeneity: named directed process
  pairs run a multiple slower than everyone else, the asynchronous
  analogue of the slow-link schedules the necessity argument builds.
"""

from __future__ import annotations

import random
from typing import Any, Sequence, Tuple

from repro.model.errors import SimulationError

#: The delay-model kinds a spec may name.
DELAY_MODEL_KINDS = ("fixed", "uniform", "exponential", "slow_pairs")

#: The model used when a spec leaves ``delay_model=None``.
DEFAULT_DELAY_SPEC: Tuple[Any, ...] = ("uniform", 0.1, 0.9)


class DelayModel:
    """Base: a distribution over per-channel latencies (round units)."""

    def latency(self, src: int, dst: int, rng: random.Random) -> float:
        """One latency draw for the ``src -> dst`` channel, >= 0."""
        raise NotImplementedError

    def spec(self) -> Tuple[Any, ...]:
        """The canonical spec tuple this model was built from."""
        raise NotImplementedError


class FixedDelay(DelayModel):
    """Every channel takes exactly ``amount`` rounds (degenerate but
    useful for pinning the driver's mechanics in tests)."""

    def __init__(self, amount: float) -> None:
        if amount < 0:
            raise SimulationError("fixed delay must be >= 0")
        self.amount = float(amount)

    def latency(self, src: int, dst: int, rng: random.Random) -> float:
        return self.amount

    def spec(self) -> Tuple[Any, ...]:
        return ("fixed", self.amount)


class UniformDelay(DelayModel):
    """Latency ~ Uniform[lo, hi] rounds on every channel."""

    def __init__(self, lo: float, hi: float) -> None:
        if not (0 <= lo <= hi):
            raise SimulationError(
                f"uniform delay needs 0 <= lo <= hi, got [{lo}, {hi}]"
            )
        self.lo = float(lo)
        self.hi = float(hi)

    def latency(self, src: int, dst: int, rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)

    def spec(self) -> Tuple[Any, ...]:
        return ("uniform", self.lo, self.hi)


class ExponentialDelay(DelayModel):
    """Latency ~ min(Exp(mean), cap) rounds: heavy-tailed but bounded.

    The cap keeps the model inside the admissible envelope the round
    world assumes — every wake lands within a known number of rounds,
    so quiescence detection and the fault-plan horizon stay meaningful.
    """

    def __init__(self, mean: float, cap: float) -> None:
        if mean <= 0 or cap <= 0:
            raise SimulationError("exponential delay needs mean > 0, cap > 0")
        self.mean = float(mean)
        self.cap = float(cap)

    def latency(self, src: int, dst: int, rng: random.Random) -> float:
        return min(rng.expovariate(1.0 / self.mean), self.cap)

    def spec(self) -> Tuple[Any, ...]:
        return ("exponential", self.mean, self.cap)


class SlowPairsDelay(DelayModel):
    """Adversarial heterogeneity: named directed pairs run slower.

    Latency is drawn from a base :class:`UniformDelay` and multiplied by
    ``factor`` when ``(src, dst)`` is one of the slow pairs (process
    indices, directional).  Self-pairs model a slow *process* rather
    than a slow link.
    """

    def __init__(
        self,
        factor: float,
        pairs: Sequence[Tuple[int, int]],
        lo: float = 0.1,
        hi: float = 0.9,
    ) -> None:
        if factor < 1:
            raise SimulationError("slow_pairs factor must be >= 1")
        self.factor = float(factor)
        self.pairs = frozenset(
            (int(src), int(dst)) for src, dst in pairs
        )
        if not self.pairs:
            raise SimulationError("slow_pairs needs at least one pair")
        self._base = UniformDelay(lo, hi)

    def latency(self, src: int, dst: int, rng: random.Random) -> float:
        base = self._base.latency(src, dst, rng)
        if (src, dst) in self.pairs:
            return base * self.factor
        return base

    def spec(self) -> Tuple[Any, ...]:
        return (
            "slow_pairs",
            self.factor,
            tuple(sorted(self.pairs)),
            self._base.lo,
            self._base.hi,
        )


def canonical_delay_spec(spec: Any) -> Tuple[Any, ...]:
    """Validate and canonicalize a delay spec (lists -> tuples).

    JSON round trips turn tuples into lists; canonicalization makes the
    spec hashable and byte-stable, and building the model validates the
    parameters eagerly so a bad spec fails at capture time, not inside
    the event loop.
    """
    model = build_delay_model(spec)
    return model.spec()


def build_delay_model(spec: Any) -> DelayModel:
    """Instantiate the model a spec tuple names (``None`` -> default)."""
    if spec is None:
        spec = DEFAULT_DELAY_SPEC
    if isinstance(spec, DelayModel):
        return spec
    try:
        kind, params = spec[0], tuple(spec[1:])
    except (TypeError, IndexError):
        raise SimulationError(f"malformed delay spec {spec!r}")
    if kind == "fixed":
        (amount,) = params
        return FixedDelay(float(amount))
    if kind == "uniform":
        lo, hi = params
        return UniformDelay(float(lo), float(hi))
    if kind == "exponential":
        mean, cap = params
        return ExponentialDelay(float(mean), float(cap))
    if kind == "slow_pairs":
        if len(params) == 2:
            factor, pairs = params
            lo, hi = 0.1, 0.9
        else:
            factor, pairs, lo, hi = params
        return SlowPairsDelay(
            float(factor),
            [(int(s), int(d)) for s, d in pairs],
            float(lo),
            float(hi),
        )
    raise SimulationError(
        f"unknown delay model {kind!r}; expected one of {DELAY_MODEL_KINDS}"
    )


def parse_delay_model(text: str) -> Tuple[Any, ...]:
    """Parse a CLI-style delay spec: ``kind[:param[:param...]]``.

    Examples: ``uniform:0.1:0.9``, ``exponential:1.0:8``, ``fixed:0.5``,
    ``slow_pairs:4:1-2,2-1``.  A bare kind uses that model's defaults.
    """
    parts = text.split(":")
    kind = parts[0]
    args = parts[1:]
    if kind == "fixed":
        return canonical_delay_spec(("fixed", float(args[0]) if args else 0.5))
    if kind == "uniform":
        lo = float(args[0]) if args else 0.1
        hi = float(args[1]) if len(args) > 1 else 0.9
        return canonical_delay_spec(("uniform", lo, hi))
    if kind == "exponential":
        mean = float(args[0]) if args else 0.5
        cap = float(args[1]) if len(args) > 1 else 8.0
        return canonical_delay_spec(("exponential", mean, cap))
    if kind == "slow_pairs":
        factor = float(args[0]) if args else 4.0
        pairs = []
        if len(args) > 1 and args[1]:
            for chunk in args[1].split(","):
                src, _, dst = chunk.partition("-")
                pairs.append((int(src), int(dst)))
        if not pairs:
            pairs = [(1, 2), (2, 1)]
        return canonical_delay_spec(("slow_pairs", factor, tuple(pairs)))
    raise SimulationError(
        f"unknown delay model {kind!r}; expected one of {DELAY_MODEL_KINDS}"
    )


__all__ = [
    "DEFAULT_DELAY_SPEC",
    "DELAY_MODEL_KINDS",
    "DelayModel",
    "ExponentialDelay",
    "FixedDelay",
    "SlowPairsDelay",
    "UniformDelay",
    "build_delay_model",
    "canonical_delay_spec",
    "parse_delay_model",
]
