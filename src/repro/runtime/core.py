"""The transport/clock-agnostic execution core.

:class:`ExecutionCore` owns everything about *who may act and who can
answer* that is independent of **how time advances**: the actor
registry (sorted once), the alive ∩ participation eligibility filter
with its crash-epoch memo, injector-driven participation churn, the
responder (quorum) set with its change fingerprint, the settle-horizon
and hidden-pending-work accounting that gate quiescence, and the
per-round tracer.

Two drivers share one core:

* :class:`repro.runtime.scheduler.Scheduler` (the *round driver*) —
  the lockstep loop every golden-pinned run uses: advance a logical
  clock by 1, shuffle the eligible set with the seeded RNG, dispatch.
* :class:`repro.runtime.async_driver.AsyncDriver` — the real-time
  loop: the same actors as asyncio tasks over in-memory channels, with
  wall-clock (or virtual-clock) delay models instead of rounds.

The split is behaviour-preserving by construction: the round driver
calls the exact code that used to live inline in ``Scheduler.round``
(same data structures, same branch order), and the golden fingerprint
suite in ``tests/runtime`` pins that down byte-for-byte.  What the
core deliberately does **not** own: the clock (drivers define time),
the RNG (only the round driver draws a schedule from it) and the
dispatch policy (full-scan forcing is a round-loop concept).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

from repro.metrics.trace import TraceRecorder
from repro.model.failures import Time

#: Sortable actor key — a ProcessId for per-process hosts, a string for
#: whole-system hosts (baselines, emulation drivers).
Key = TypeVar("Key")


class Actor:
    """One schedulable unit: a process, or a whole subsystem.

    Adapters implement three verbs:

    * :meth:`parked` — whether skipping this actor in a non-full-scan
      round is provably a no-op.  The round driver consults it *after*
      the shuffle, so parking never changes the RNG stream; the async
      driver uses it to decide when a task may sleep on its channel.
    * :meth:`fire` — take the actor's step(s); returns the number of
      *productive* actions (0 = the step provably changed nothing),
      which feeds both the tracer and quiescence detection.  The
      driver passes ``parked=False`` when its own skip check already
      proved the actor un-parked this round, so adapters whose
      productivity test *is* the parked test need not recompute it.
    * :meth:`wait_reasons` — why a scanned-but-idle actor is blocked
      (histogrammed into the round trace).

    ``SKIP_WAIT`` names the wait reasons recorded when the actor is
    skipped while parked (the kernel counts those as ``idle``; the
    engine records nothing).
    """

    SKIP_WAIT: Tuple[str, ...] = ()

    def parked(self, t: Time) -> bool:
        return False

    def fire(
        self,
        t: Time,
        budget: Optional[int] = None,
        parked: Optional[bool] = None,
    ) -> int:
        raise NotImplementedError

    def wait_reasons(self) -> Iterable[str]:
        return ()


def transition_signature(
    eligible: Iterable[Any], responders: Iterable[Any]
) -> str:
    """A compact, deterministic digest of one participation state.

    The signature covers *which* actors may act and *which* can answer
    quorum requests — the schedule-level state whose transitions
    fingerprint an interleaving.  Keys are reduced to their sortable
    identity (``ProcessId.index`` or the string key itself) so the
    digest is stable across processes and runs.
    """

    def _ident(key: Any) -> str:
        return str(getattr(key, "index", key))

    body = (
        ",".join(_ident(k) for k in eligible)
        + "|"
        + ",".join(sorted(_ident(k) for k in responders))
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:12]


class ExecutionCore:
    """Actor registry + eligibility/quorum/quiescence accounting.

    Args:
        actors: the schedulable units, keyed by a sortable identity.
        tracer: per-round counters (see :mod:`repro.metrics.trace`).
        is_alive: ``(key, t) -> bool`` — crash filtering; keys failing
            it are not scheduled at all.
        settle_horizon: callable returning the time by which detector
            outputs have stabilized; quiescence is only trusted past it
            (and the round driver forces full scans up to it).
        pre_round: optional hook run right after the clock advances and
            before eligibility is computed (crash-time cleanup).
        responders: initial responder set (processes able to answer
            quorum requests), before any round has run.
        injector: optional :class:`repro.faults.FaultInjector`; its
            ``suppresses`` hook models participation churn.  ``None``
            leaves every code path byte-identical to fault-free.
        pending_work: optional callable returning the amount of work
            the actors cannot see yet but that is still due (e.g.
            fault-delayed datagrams).  Quiescence is refused while it
            reports nonzero.
        alive_instants: optional times at which ``is_alive`` answers
            can change (the host's crash instants) — enables the
            epoch-memoized eligibility filter.
    """

    def __init__(
        self,
        actors: Mapping[Key, Actor],
        tracer: TraceRecorder,
        is_alive: Callable[[Key, Time], bool],
        settle_horizon: Optional[Callable[[], Time]] = None,
        pre_round: Optional[Callable[[Time], None]] = None,
        responders: Optional[FrozenSet[Key]] = None,
        injector: Optional[Any] = None,
        pending_work: Optional[Callable[[], int]] = None,
        alive_instants: Optional[Iterable[Time]] = None,
    ) -> None:
        self.actors: Dict[Key, Actor] = dict(actors)
        #: Keys in sorted order, fixed at construction: iterating this
        #: (filtered) yields the eligible set already sorted, replacing
        #: the per-round ``order.sort()`` of the seed loops with the
        #: byte-identical result.
        self.sorted_keys: Tuple[Key, ...] = tuple(sorted(self.actors))
        self.tracer = tracer
        self.is_alive = is_alive
        self._settle_horizon = settle_horizon or (lambda: 0)
        self.pre_round = pre_round
        self.injector = injector
        self._pending_work = pending_work
        #: Actors able to answer quorum requests *right now*: the alive
        #: members of the last round's responder (or scheduled) set.
        self.responders: FrozenSet[Key] = responders or frozenset()
        #: Fingerprint of (scheduled set, responder set) of the last
        #: round; a change forces a full scan (quorum availability).
        self._fp_eligible: Optional[Tuple[Key, ...]] = None
        self._fp_responders: Optional[FrozenSet[Key]] = None
        #: Cache of the default (participation-derived) responder set.
        self._default_eligible: Optional[Tuple[Key, ...]] = None
        self._default_responders: Optional[FrozenSet[Key]] = None
        #: Alive-filter memo: the filtered key list is a pure function
        #: of the crash epoch.
        self._alive_instants = (
            None if alive_instants is None else sorted(alive_instants)
        )
        self._alive_epoch: Optional[int] = None
        self._alive_order: Tuple[Key, ...] = ()

    # -- Quiescence inputs -------------------------------------------------

    def settle_horizon(self) -> Time:
        """The host's detector-stabilization time (0 when none)."""
        return self._settle_horizon()

    def has_pending_work(self) -> bool:
        """Whether hidden work (e.g. a fault delay heap) is still due."""
        return self._pending_work is not None and bool(self._pending_work())

    # -- Eligibility -------------------------------------------------------

    def eligible_order(
        self, now: Time, participation: Optional[Iterable[Key]] = None
    ) -> List[Key]:
        """The sorted alive ∩ participation ∖ suppressed keys, as a
        fresh (mutable) list — the round driver shuffles it in place."""
        is_alive = self.is_alive
        if participation is None:
            if self._alive_instants is not None:
                epoch = bisect_right(self._alive_instants, now)
                if epoch != self._alive_epoch:
                    self._alive_epoch = epoch
                    self._alive_order = tuple(
                        key
                        for key in self.sorted_keys
                        if is_alive(key, now)
                    )
                order = list(self._alive_order)
            else:
                order = [
                    key for key in self.sorted_keys if is_alive(key, now)
                ]
        else:
            order = [
                key
                for key in self.sorted_keys
                if is_alive(key, now) and key in participation
            ]
        if self.injector is not None:
            # Participation churn: suppressed actors take no step this
            # round and answer no quorum requests.  Only faulted runs
            # ever reach this branch, so the fault-free RNG stream (in
            # the round driver) is untouched.
            order = [
                key
                for key in order
                if not self.injector.suppresses(key, now)
            ]
        return order

    def refresh_responders(
        self,
        now: Time,
        eligible: Tuple[Key, ...],
        responders: Optional[Iterable[Key]] = None,
    ) -> FrozenSet[Key]:
        """Recompute :attr:`responders` for this round."""
        if responders is None:
            if eligible == self._default_eligible:
                self.responders = self._default_responders
            else:
                self.responders = frozenset(eligible)
                self._default_eligible = eligible
                self._default_responders = self.responders
        else:
            self.responders = frozenset(
                key
                for key in responders
                if self.is_alive(key, now)
                and (
                    self.injector is None
                    or not self.injector.suppresses(key, now)
                )
            )
        return self.responders

    def note_fingerprint(self, eligible: Tuple[Key, ...]) -> bool:
        """Record this round's (eligible, responders) pair; report
        whether it changed since the previous round.  Stored as the
        *sorted eligible list* plus the responder set — sorted-list
        equality is set equality without per-round hashing."""
        changed = eligible != self._fp_eligible or (
            self.responders is not self._fp_responders
            and self.responders != self._fp_responders
        )
        self._fp_eligible = eligible
        self._fp_responders = self.responders
        if changed:
            # Surface the transition to the tracer as a compact
            # signature.  Digesting only on *changes* keeps the round
            # loop cost-free in the steady state (transitions happen at
            # crash epochs and churn windows, not every round).
            self.tracer.note_transition(
                transition_signature(eligible, self.responders)
            )
        return changed


__all__ = ["ExecutionCore", "Actor", "Key", "transition_signature"]
