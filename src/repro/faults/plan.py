"""Fault plans: an adversarial schedule described as a *value*.

The paper's claims quantify over *every* admissible run of the
Chandra–Toueg model (Appendix A), yet a seeded shuffle only ever
exercises one benign schedule per seed: links behave FIFO with zero
delay, detector oracles answer with ground truth, and crashes land at a
single instant.  A :class:`FaultPlan` names a *specific adversary* —
a finite set of :class:`FaultEvent` perturbations, each confined to a
bounded time window — that the execution hosts replay deterministically
(see :mod:`repro.faults.injector`).

Plans are designed like :class:`repro.workloads.spec.ScenarioSpec`:
frozen, hashable, canonically ordered, JSON-round-trippable value
objects.  Two equal plans describe byte-identical perturbations;
:meth:`FaultPlan.plan_hash` is the content address campaign rows,
triage lines and repro files carry.

Admissibility by construction
=============================

Every event kind below stays *inside* the model's admissibility
conditions, so a plan can make a run arbitrarily unpleasant but never
unfair:

* link events (``link_delay``, ``link_reorder``, ``link_dup``,
  ``link_drop``) perturb the shared message buffer within fair-lossy
  semantics — delays are finite, reordering is bounded to a window,
  duplication has a finite budget, and a dropped datagram is always
  retransmitted (a drop without retransmission would violate the
  fairness condition that every message addressed to a process taking
  infinitely many steps is eventually received);
* detector events (``sigma_noise``, ``omega_late``, ``gamma_delay``)
  produce histories that still satisfy the detector class properties:
  ``Sigma`` noise pins samples to the *full scope* (any two samples
  still intersect, and Liveness only constrains the infinite suffix),
  ``omega_late`` delays stabilization by a finite amount (Leadership is
  an eventual property), and ``gamma_delay`` adds finite detection lag;
* ``crash_burst`` adds crashes — every environment considered in §5.2
  is closed under early/extra crashes, and monotonicity is preserved by
  construction (:meth:`repro.model.FailurePattern.with_crash`);
* ``churn`` suspends processes for a finite window, which is just
  asynchrony (any finite step delay is an admissible schedule);
* recovery events (``partition``, ``crash_recover``, ``link_flaky``)
  extend the axis with healing: a ``partition`` splits the process set
  into two components for a bounded window and *retransmits every
  cut-crossing datagram at heal time* (fair lossy by construction), a
  ``crash_recover`` crashes a process and rejoins it from a snapshot of
  its durable substrate state at the window close (the base pattern's
  own crashes are never resurrected), and ``link_flaky`` drops matching
  datagrams probabilistically inside the window with an *unconditional*
  per-datagram retransmission shortly after the drop.

The *finite horizon* is the load-bearing invariant: every event declares
when it is over, :meth:`FaultPlan.horizon` is the time by which the
whole plan is spent, and the execution hosts fold that horizon into
their settle horizon so quiescence is never declared mid-chaos.  The
:mod:`repro.faults.injector` auditor re-checks the dynamic half of these
promises after every run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.model.errors import ModelError
from repro.model.failures import Time

#: Bumped on breaking changes to the plan JSON layout.
PLAN_SCHEMA_VERSION = 1

#: Event kinds that perturb the shared message buffer (kernel backend).
LINK_KINDS = ("link_delay", "link_reorder", "link_dup", "link_drop")

#: Event kinds that perturb the failure-detector histories.
DETECTOR_KINDS = ("sigma_noise", "omega_late", "gamma_delay")

#: Event kinds that perturb the failure pattern / the schedule itself.
SCHEDULE_KINDS = ("crash_burst", "churn")

#: Recovery-aware kinds (healing partitions, crash–recovery, flaky
#: links requiring retransmission).  Kept out of :data:`LINK_KINDS` /
#: :data:`SCHEDULE_KINDS` so the frozen nemesis draw streams of the
#: pre-existing named mixes are untouched.
RECOVERY_KINDS = ("partition", "crash_recover", "link_flaky")

#: Every supported injector kind.
EVENT_KINDS = LINK_KINDS + DETECTOR_KINDS + SCHEDULE_KINDS + RECOVERY_KINDS


class FaultPlanError(ModelError):
    """An inadmissible or malformed fault plan."""


def _event_key(event: "FaultEvent") -> Tuple:
    """Total order over events (None fields sort before any value)."""
    return (
        event.kind,
        event.start,
        event.until,
        event.amount,
        -1 if event.src is None else event.src,
        -1 if event.dst is None else event.dst,
        "" if event.group is None else event.group,
        event.targets,
    )


@dataclass(frozen=True)
class FaultEvent:
    """One bounded perturbation.

    A deliberately *flat* record — one dataclass for every kind, with
    unused fields at their defaults — so plans stay trivially hashable,
    JSON-stable and easy to slice for delta debugging (the shrinker
    removes events, never edits fields).

    Field meaning by kind:

    ``link_delay``
        datagrams sent on the matching link during ``[start, until)``
        become receivable only ``amount`` rounds after their send.
    ``link_reorder``
        receives at ``dst`` during ``[start, until)`` extract a random
        datagram among the first ``amount`` receivable ones (seeded
        injector RNG) instead of the FIFO head.
    ``link_dup``
        up to ``amount`` matching datagrams sent during the window are
        duplicated once (bounded at-least-once delivery).
    ``link_drop``
        up to ``amount`` matching datagrams sent during the window are
        dropped; the link retransmits each at the window close (fair
        lossy: the drop is finite and the retransmission unconditional).
    ``sigma_noise``
        ``Sigma_P`` samples for scopes inside ``group`` (every scope
        when ``group`` is None) are pinned to the full scope during
        ``[start, until)`` — transient false information that still
        satisfies Intersection, and Liveness on the suffix.
    ``omega_late``
        ``Omega_group`` stabilizes no earlier than ``until``; before
        that the reported leader may rotate among alive members.
    ``gamma_delay``
        the gamma oracle's detection lag grows by ``amount``.
    ``crash_burst``
        process index ``targets[i]`` crashes at ``start + i * amount``
        (a staggered burst rather than a single instant).
    ``churn``
        processes ``targets`` take no steps during ``[start, until)``.
    ``partition``
        during ``[start, until)`` the process set is split into the
        component ``targets`` and its complement; every datagram
        crossing the cut is dropped and retransmitted at the heal time
        ``until`` (plus one round of transit).
    ``crash_recover``
        process ``targets[0]`` crashes at ``start`` and rejoins at
        ``until`` from a snapshot of its durable substrate state (the
        volatile state of in-flight protocol phases is lost).
    ``link_flaky``
        datagrams on the matching link sent during ``[start, until)``
        are dropped with probability one half (seeded injector RNG);
        every drop is retransmitted within ``1 + amount`` rounds —
        probabilistic loss that *requires* retransmission to stay
        fair lossy.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        src: 1-based sender index for link events (None = any sender).
        dst: 1-based receiver index for link events (None = any).
        group: group name scoping detector events (None = every scope).
        start: first time (inclusive) the event is active.
        until: first time the event is over; must be finite and
            ``>= start`` (kinds without a window leave it at 0).
        amount: kind-specific magnitude (delay rounds, duplicate budget,
            reorder window, extra lag, burst stagger gap).
        targets: 1-based process indices for ``crash_burst``/``churn``.
    """

    kind: str
    src: Optional[int] = None
    dst: Optional[int] = None
    group: Optional[str] = None
    start: Time = 0
    until: Time = 0
    amount: int = 0
    targets: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )
        if self.start < 0 or self.until < 0:
            raise FaultPlanError(f"{self.kind}: negative time window")
        if self.amount < 0:
            raise FaultPlanError(f"{self.kind}: negative amount")
        if (
            self.kind in LINK_KINDS
            or self.kind in RECOVERY_KINDS
            or self.kind in ("sigma_noise", "churn")
        ):
            if self.until < self.start:
                raise FaultPlanError(
                    f"{self.kind}: window [{self.start}, {self.until}) "
                    "is empty the wrong way around"
                )
        if self.kind in ("crash_burst", "churn", "partition", "crash_recover"):
            if not self.targets:
                raise FaultPlanError(f"{self.kind}: needs target processes")
            if len(set(self.targets)) != len(self.targets):
                raise FaultPlanError(f"{self.kind}: duplicate targets")
        elif self.targets:
            raise FaultPlanError(f"{self.kind}: takes no targets")
        if self.kind == "link_reorder" and self.amount < 2:
            raise FaultPlanError(
                "link_reorder: amount is the pick window and must be >= 2"
            )
        if self.kind == "crash_recover":
            if len(self.targets) != 1:
                raise FaultPlanError(
                    "crash_recover: exactly one victim per event"
                )
            if self.until <= self.start:
                raise FaultPlanError(
                    "crash_recover: the rejoin must come strictly after "
                    "the crash"
                )

    # -- Window queries (the injector's hot predicates) -------------------

    def active(self, t: Time) -> bool:
        """Whether ``t`` falls inside the event's ``[start, until)``."""
        return self.start <= t < self.until

    def ends_by(self) -> Time:
        """The first time at which this event can no longer perturb.

        A ``link_delay`` sent at ``until - 1`` is receivable at
        ``until - 1 + amount``; a ``link_drop`` retransmits at ``until``
        plus one round of transit; a ``crash_burst`` finishes its
        stagger at ``start + (len - 1) * amount``.  The plan horizon is
        the max over events.
        """
        if self.kind == "link_delay":
            return max(self.until, self.until - 1 + self.amount + 1)
        if self.kind in ("link_drop", "partition", "crash_recover"):
            # Heal-time retransmissions (partition) land at ``until``
            # plus transit; a recovered process needs a round past its
            # rejoin before quiescence can be trusted.
            return self.until + 1
        if self.kind == "link_flaky":
            # The last in-window drop (at ``until - 1``) retransmits no
            # later than ``until + amount``; add one round of transit.
            return self.until + self.amount + 1
        if self.kind == "crash_burst":
            return self.start + (len(self.targets) - 1) * self.amount + 1
        if self.kind == "gamma_delay":
            # Lag shifts detection; the engine folds it into its own
            # settle time, so the event itself is over immediately.
            return 0
        if self.kind == "omega_late":
            return self.until
        return self.until

    def matches_link(self, src_index: int, dst_index: int) -> bool:
        """Whether a ``src -> dst`` datagram falls under this event."""
        return (self.src is None or self.src == src_index) and (
            self.dst is None or self.dst == dst_index
        )

    def cuts(self, src_index: int, dst_index: int) -> bool:
        """Whether a ``src -> dst`` datagram crosses this partition's
        cut (exactly one endpoint inside the ``targets`` component)."""
        return (src_index in self.targets) != (dst_index in self.targets)

    # -- Serialization ----------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """A compact JSON dict (defaults omitted); inverse of from_json."""
        body: Dict[str, Any] = {"kind": self.kind}
        if self.src is not None:
            body["src"] = self.src
        if self.dst is not None:
            body["dst"] = self.dst
        if self.group is not None:
            body["group"] = self.group
        if self.start:
            body["start"] = self.start
        if self.until:
            body["until"] = self.until
        if self.amount:
            body["amount"] = self.amount
        if self.targets:
            body["targets"] = list(self.targets)
        return body

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FaultEvent":
        return cls(
            kind=data["kind"],
            src=data.get("src"),
            dst=data.get("dst"),
            group=data.get("group"),
            start=int(data.get("start", 0)),
            until=int(data.get("until", 0)),
            amount=int(data.get("amount", 0)),
            targets=tuple(int(i) for i in data.get("targets", ())),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A finite set of admissible perturbations, canonically ordered.

    Attributes:
        events: the perturbations, stored sorted so two plans built from
            the same events in any order compare (and hash) equal.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        canonical = tuple(sorted(self.events, key=_event_key))
        object.__setattr__(self, "events", canonical)

    # -- Introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def is_empty(self) -> bool:
        return not self.events

    def horizon(self) -> Time:
        """The first time by which every perturbation is provably over.

        Execution hosts fold this into their settle horizon: quiescence
        (and detector stability) is only trusted past it, which is what
        keeps a plan from silently truncating a run mid-perturbation.
        """
        return max((event.ends_by() for event in self.events), default=0)

    def by_kind(self, *kinds: str) -> Tuple[FaultEvent, ...]:
        """The plan's events of the given kinds, in canonical order."""
        return tuple(e for e in self.events if e.kind in kinds)

    # -- Derivation (shrinker + explorer mutations) -----------------------

    def subset(self, indices: Iterable[int]) -> "FaultPlan":
        """The sub-plan keeping only the events at ``indices``."""
        keep = set(indices)
        return FaultPlan(
            tuple(e for i, e in enumerate(self.events) if i in keep)
        )

    def without(self, event: FaultEvent) -> "FaultPlan":
        """The plan with one event removed (first occurrence)."""
        events = list(self.events)
        events.remove(event)
        return FaultPlan(tuple(events))

    def adding(self, event: FaultEvent) -> "FaultPlan":
        """The plan with one event added (idempotent on duplicates).

        The event has already passed ``FaultEvent.__post_init__``, so
        the result is admissible by construction — the explorer's add
        mutation never needs a separate validity check.
        """
        if event in self.events:
            return self
        return FaultPlan(self.events + (event,))

    def replacing(self, old: FaultEvent, new: FaultEvent) -> "FaultPlan":
        """The plan with ``old`` swapped for ``new`` (retime/retarget).

        Raises :class:`FaultPlanError` when ``old`` is absent — a
        mutation over a stale parent is a bug, not a no-op.
        """
        if old not in self.events:
            raise FaultPlanError(f"replacing: {old!r} not in plan")
        events = list(self.events)
        events[events.index(old)] = new
        return FaultPlan(tuple(events))

    def spliced(
        self,
        other: "FaultPlan",
        keep_self: Iterable[int],
        keep_other: Iterable[int],
    ) -> "FaultPlan":
        """A crossover child: chosen events of ``self`` + ``other``.

        The explorer's splice mutation — both parents are admissible and
        admissibility is closed under union (every event is individually
        bounded and kinds do not interact in ``__post_init__``), so the
        child is admissible by construction.  Duplicate events collapse
        through canonical ordering's sibling, set union.
        """
        mine = set(keep_self)
        theirs = set(keep_other)
        merged = {
            e for i, e in enumerate(self.events) if i in mine
        } | {e for i, e in enumerate(other.events) if i in theirs}
        return FaultPlan(tuple(merged))

    # -- Serialization ----------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": PLAN_SCHEMA_VERSION,
            "events": [event.to_json() for event in self.events],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            events=tuple(
                FaultEvent.from_json(event) for event in data["events"]
            )
        )

    def plan_hash(self) -> str:
        """Content address of the plan (sha256 hex).

        The schema version is excluded for the same reason
        :meth:`repro.workloads.spec.ScenarioSpec.spec_hash` excludes it:
        additive schema bumps must not reshuffle the addresses of plans
        they do not affect.
        """
        body = self.to_json()
        body.pop("schema", None)
        canonical = json.dumps(
            body, sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.events:
            return "FaultPlan(benign)"
        kinds: Dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        summary = ", ".join(f"{k}x{n}" for k, n in sorted(kinds.items()))
        return f"FaultPlan({summary}; horizon={self.horizon()})"


def plan_of(*events: FaultEvent) -> FaultPlan:
    """Convenience constructor: a plan from loose events."""
    return FaultPlan(tuple(events))
