"""Counterexample shrinking: ddmin over fault-plan events.

A nemesis campaign that turns a row red hands you a plan of a dozen
events; most of them are noise.  :func:`shrink_plan` is classic delta
debugging (Zeller's ddmin) over the plan's event set: it repeatedly
re-runs the scenario under event subsets and their complements, keeping
the smallest plan whose run still *fails* — where "fails" is any
predicate, by default "some §2.2 property checker reports a violation
(or the run never proves anything because it was truncated)".

The minimized counterexample is emitted as a **repro file**: one JSON
document carrying the spec (with the minimal plan inlined), its content
hash, the seed and the plan hash — everything a reader needs to replay
the violation with :func:`replay_repro`, on any checkout, with no other
context.  Because every run is a pure function of the spec (injector
randomness is derived from ``(plan hash, seed)``), the replay is
deterministic.

This module sits above the workloads layer, so import it as
``repro.faults.shrink`` — it is deliberately not re-exported by
:mod:`repro.faults` (see the package docstring on layering).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.faults.injector import injector_for
from repro.faults.plan import FaultPlan
from repro.props.batch import batch_verdicts, variant_checks, verdicts_ok
from repro.workloads.runner import run_scenario, scenario_cache_key, triage_record
from repro.workloads.spec import ScenarioSpec

#: Bumped on breaking changes to the shrink-cache entry layout.
SHRINK_CACHE_SCHEMA_VERSION = 1

#: ``(spec-with-plan) -> True when the run still violates``.
Predicate = Callable[[ScenarioSpec], bool]


# -- Harnesses ----------------------------------------------------------------
#
# A harness turns a spec into a checkable outcome.  ``"scenario"`` is
# the real system (Algorithm 1 / the kernel's replicated logs, via
# ``run_scenario``); ``"broadcast"`` is the §2.3 non-genuine baseline —
# atomic multicast over a global atomic broadcast — whose Minimality
# violation is intrinsic, which makes it the canonical shrinker fixture:
# the minimal failing plan is the *empty* plan.  Repro files name their
# harness so a replay judges the run the same way the hunt did.


def _scenario_outcome(spec: ScenarioSpec) -> Dict[str, Any]:
    result = run_scenario(spec)
    return {
        "verdicts": batch_verdicts(
            result.record, extra=variant_checks(spec.variant)
        ),
        "truncated": result.truncated,
    }


def _broadcast_outcome(spec: ScenarioSpec) -> Dict[str, Any]:
    from repro.baselines.broadcast import BroadcastMulticast
    from repro.workloads.runner import _process

    topology = spec.build_topology()
    pattern = spec.build_pattern()
    injector = injector_for(spec.faults, topology, seed=spec.seed)
    if injector is not None:
        # The baseline has no buffer and samples no detectors; only the
        # crash-burst slice of the plan perturbs it.
        pattern = injector.perturb_pattern(pattern)
    system = BroadcastMulticast(topology, pattern, seed=spec.seed)
    skipped = 0
    for send in spec.sends:
        sender = _process(topology, send.sender)
        if not pattern.is_alive(sender, system.time):
            skipped += 1
            continue
        system.multicast(sender, send.group, send.payload)
    rounds = system.run(max_rounds=spec.max_rounds)
    return {
        "verdicts": batch_verdicts(
            system.record, extra=variant_checks(spec.variant)
        ),
        "truncated": rounds >= spec.max_rounds,
    }


HARNESSES: Dict[str, Callable[[ScenarioSpec], Dict[str, Any]]] = {
    "scenario": _scenario_outcome,
    "broadcast": _broadcast_outcome,
}


def run_harness(harness: str, spec: ScenarioSpec) -> Dict[str, Any]:
    """Run ``spec`` under a named harness; returns verdicts + truncation."""
    try:
        runner = HARNESSES[harness]
    except KeyError:
        raise ValueError(
            f"unknown harness {harness!r}; pick from {sorted(HARNESSES)}"
        ) from None
    return runner(spec)


def harness_violates(harness: str) -> Predicate:
    """The failure predicate of a named harness.

    Truncation counts as failing: a run cut short by its budget cannot
    witness Termination, and a shrinker that "fixes" a violation by
    making the run inconclusive has minimized the wrong thing.
    """

    def violates(spec: ScenarioSpec) -> bool:
        outcome = run_harness(harness, spec)
        return not verdicts_ok(outcome["verdicts"]) or outcome["truncated"]

    return violates


def default_violates(spec: ScenarioSpec) -> bool:
    """Whether the spec's ``run_scenario`` run fails a checker."""
    return harness_violates("scenario")(spec)


class ShrinkCache:
    """Persistent memo of ``(harness, cell) -> violates`` verdicts.

    The shrinker's predicate is a pure function of the harness and the
    campaign cell identity (spec hash, seed, backend, plan hash — the
    same :func:`scenario_cache_key` the :class:`repro.campaign`
    result cache keys on), so its verdicts survive across processes:
    re-shrinking a re-found failure in a later explorer invocation is
    O(cache hits) instead of O(runs).  Layout mirrors the campaign
    cache (one JSON file per cell, two-level fan-out, atomic writes,
    corruption = miss).
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.stored = 0

    def key_for(self, harness: str, spec: ScenarioSpec) -> str:
        body = f"{harness}:{scenario_cache_key(spec)}"
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def path_for(self, harness: str, spec: ScenarioSpec) -> str:
        key = self.key_for(harness, spec)
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, harness: str, spec: ScenarioSpec) -> Optional[bool]:
        """The stored verdict, or ``None`` to evaluate."""
        try:
            with open(self.path_for(harness, spec), encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != SHRINK_CACHE_SCHEMA_VERSION
            or not isinstance(entry.get("violates"), bool)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry["violates"]

    def put(self, harness: str, spec: ScenarioSpec, violates: bool) -> None:
        path = self.path_for(harness, spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        body = {
            "schema": SHRINK_CACHE_SCHEMA_VERSION,
            "harness": harness,
            "triage": triage_record(spec),
            "violates": violates,
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(body, fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        self.stored += 1


def ensure_shrink_cache(
    cache: Optional[Union[str, "ShrinkCache"]],
) -> Optional["ShrinkCache"]:
    """Coerce a cache argument (directory path or instance) to a cache."""
    if cache is None or isinstance(cache, ShrinkCache):
        return cache
    if isinstance(cache, str):
        return ShrinkCache(cache)
    raise TypeError(
        f"cache must be a ShrinkCache or a directory path, got {cache!r}"
    )


class PlanShrinker:
    """ddmin over the events of a fault plan.

    Args:
        spec: the scenario (its ``faults`` field is overwritten by each
            candidate plan during the search).
        violates: the failure predicate; defaults to
            :func:`default_violates`.  Must be deterministic — runs are,
            so any predicate built on :func:`run_scenario` qualifies.
        cache: optional :class:`ShrinkCache` (or directory path) for
            verdict persistence across invocations.  Only sound when
            ``violates`` really is the named ``harness``'s predicate —
            custom predicates should not share a cache directory with
            harness runs.
        harness: the cache namespace (and the predicate when
            ``violates`` is not given).

    Attributes:
        probes: ``_fails`` queries, counting every memo hit.
        evaluations: predicate calls actually executed (cache misses).
        cache_hits: probes answered from the in-memory memo or the
            persistent cache.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        violates: Optional[Predicate] = None,
        cache: Optional[Union[str, "ShrinkCache"]] = None,
        harness: str = "scenario",
    ) -> None:
        self.spec = spec
        self.harness = harness
        self.violates = violates or harness_violates(harness)
        self.probes = 0
        self.evaluations = 0
        self.cache_hits = 0
        self._cache: Dict[str, bool] = {}
        self._store = ensure_shrink_cache(cache)

    def _fails(self, plan: FaultPlan) -> bool:
        self.probes += 1
        key = plan.plan_hash()
        if key in self._cache:
            self.cache_hits += 1
            return self._cache[key]
        candidate = self.spec.faulted(plan)
        if self._store is not None:
            stored = self._store.get(self.harness, candidate)
            if stored is not None:
                self.cache_hits += 1
                self._cache[key] = stored
                return stored
        self.evaluations += 1
        verdict = self.violates(candidate)
        self._cache[key] = verdict
        if self._store is not None:
            self._store.put(self.harness, candidate, verdict)
        return verdict

    def stats(self) -> Dict[str, int]:
        """The search's cost accounting (surfaced in repro payloads)."""
        return {
            "probes": self.probes,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
        }

    def shrink(self, plan: FaultPlan) -> FaultPlan:
        """The smallest event subset of ``plan`` that still fails.

        Classic ddmin with complement reduction: partition the events
        into ``n`` chunks, try each chunk and each complement, recurse
        on whatever still fails with the finest granularity that makes
        progress.  The empty plan is tested first — when the violation
        is intrinsic to the scenario (a non-genuine baseline, a broken
        protocol), the minimal counterexample is *no fault at all*, and
        reporting anything bigger would be a lie.
        """
        if not self._fails(plan):
            raise ValueError(
                "shrink_plan needs a failing starting point; the given "
                "plan's run passes every checker"
            )
        empty = FaultPlan()
        if self._fails(empty):
            return empty
        events = list(plan)
        n = 2
        while len(events) >= 2:
            chunks = _partition(events, n)
            reduced = False
            for chunk in chunks:
                candidate = FaultPlan(tuple(chunk))
                if self._fails(candidate):
                    events = list(chunk)
                    n = 2
                    reduced = True
                    break
            if not reduced:
                for index in range(len(chunks)):
                    complement = [
                        e
                        for j, chunk in enumerate(chunks)
                        for e in chunk
                        if j != index
                    ]
                    if complement and self._fails(FaultPlan(tuple(complement))):
                        events = complement
                        n = max(2, n - 1)
                        reduced = True
                        break
            if not reduced:
                if n >= len(events):
                    break
                n = min(len(events), n * 2)
        return FaultPlan(tuple(events))


def _partition(events: Sequence[Any], n: int) -> List[List[Any]]:
    """``events`` split into ``n`` near-equal contiguous chunks."""
    chunks: List[List[Any]] = []
    size, remainder = divmod(len(events), n)
    start = 0
    for index in range(n):
        end = start + size + (1 if index < remainder else 0)
        if end > start:
            chunks.append(list(events[start:end]))
        start = end
    return chunks


def shrink_plan(
    spec: ScenarioSpec,
    plan: Optional[FaultPlan] = None,
    violates: Optional[Predicate] = None,
    harness: str = "scenario",
    cache: Optional[Union[str, ShrinkCache]] = None,
) -> Tuple[FaultPlan, PlanShrinker]:
    """Minimize ``plan`` (default: the spec's own) for ``spec``.

    Returns the minimal failing plan and the shrinker (for its cost
    stats).  ``harness`` selects the failure predicate when ``violates``
    is not given; ``cache`` persists verdicts across invocations (see
    :class:`ShrinkCache`).  Raises :class:`ValueError` when the starting
    plan does not fail — there is nothing to shrink.
    """
    if plan is None:
        plan = spec.faults or FaultPlan()
    shrinker = PlanShrinker(
        spec, violates, cache=cache, harness=harness
    )
    return shrinker.shrink(plan), shrinker


# -- Repro files --------------------------------------------------------------


def repro_payload(
    spec: ScenarioSpec,
    minimal: FaultPlan,
    original: FaultPlan,
    harness: str = "scenario",
    shrinker: Optional[PlanShrinker] = None,
) -> Dict[str, Any]:
    """The self-contained repro document for a minimized counterexample.

    When the ``shrinker`` that produced ``minimal`` is passed, the
    payload carries its cost accounting under ``"shrink"`` — probes,
    actual evaluations, cache hits and the event-count reduction ratio —
    so a soak report shows what each repro cost to minimize.
    """
    final = spec.faulted(None if minimal.is_empty() else minimal)
    outcome = run_harness(harness, final)
    payload = {
        "kind": "fault-repro",
        "harness": harness,
        "triage": triage_record(final),
        "original_plan_hash": original.plan_hash(),
        "original_events": len(original),
        "minimal_events": len(minimal),
        "verdicts": outcome["verdicts"],
        "truncated": outcome["truncated"],
        "spec": final.to_json(),
    }
    if shrinker is not None:
        stats = shrinker.stats()
        stats["reduction"] = (
            1.0 - len(minimal) / len(original) if len(original) else 0.0
        )
        payload["shrink"] = stats
    return payload


def write_repro(path: str, payload: Dict[str, Any]) -> None:
    """Write a repro document as canonical, diff-stable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_repro(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def replay_repro(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Re-run the scenario a repro document describes, the same way.

    Returns the fresh outcome (verdicts + truncation) under the
    document's harness; determinism makes comparison with
    ``payload["verdicts"]`` exact.
    """
    spec = ScenarioSpec.from_json(payload["spec"])
    return run_harness(payload.get("harness", "scenario"), spec)
