"""``python -m repro.faults`` — the nemesis smoke matrix.

Runs Algorithm 1 under random admissible fault plans across both
execution backends and every injector mix, and exits non-zero when any
run fails a §2.2 checker, trips the admissibility auditor, or times out.
CI uses this as the ``fault-matrix`` job.

The engine backend runs the paper's Figure 1 topology (the overlapping
four-group example); the kernel backend requires pairwise-disjoint
groups, so it runs the same matrix over a 3-group disjoint grid.  For
every ``(backend, mix, seed)`` cell the plan is drawn by
:func:`repro.faults.nemesis.random_plan` from the cell's own seed, so a
red cell is reproducible from its row alone.

``--shrink-demo`` additionally runs the counterexample shrinker against
the non-genuine broadcast baseline (whose Minimality violation is
intrinsic) and prints the minimized repro — the worked example of
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Tuple

from repro.campaign.executor import run_campaign
from repro.faults.nemesis import MIXES, random_plan
from repro.groups.topology import paper_figure1_topology
from repro.metrics.sweep import sweep_table
from repro.workloads.runner import Send
from repro.workloads.spec import ScenarioSpec, TopologySpec
from repro.workloads.topologies import disjoint_topology


def _base_cells() -> Tuple[Tuple[str, TopologySpec, Tuple[Send, ...], Tuple[Tuple[int, int], ...]], ...]:
    """``(backend, topology, sends, crashes)`` per backend."""
    figure1 = TopologySpec.capture(paper_figure1_topology())
    disjoint = TopologySpec.capture(disjoint_topology(3, group_size=3))
    return (
        (
            "engine",
            figure1,
            (
                Send(1, "g1", 0),
                Send(3, "g2", 0),
                Send(4, "g3", 1),
                Send(5, "g4", 1),
                Send(2, "g1", 2),
            ),
            ((2, 6),),  # p2 = g1 ∩ g2 dies mid-run
        ),
        (
            "kernel",
            disjoint,
            (Send(2, "g1", 0), Send(4, "g2", 0), Send(8, "g3", 1)),
            ((5, 8),),  # one g2 member: still a live majority
        ),
    )


def matrix_specs(
    seeds: int,
    mixes: Tuple[str, ...] = MIXES,
    backends: Tuple[str, ...] = ("engine", "kernel"),
    max_rounds: int = 600,
) -> List[ScenarioSpec]:
    """The fault-matrix grid: backends x mixes x seeds, one plan per cell."""
    specs: List[ScenarioSpec] = []
    for backend, topology, sends, crashes in _base_cells():
        if backend not in backends:
            continue
        groups = tuple(name for name, _ in topology.groups)
        for mix in mixes:
            for seed in range(seeds):
                plan = random_plan(
                    seed,
                    mix,
                    process_count=topology.process_count,
                    groups=groups,
                )
                specs.append(
                    ScenarioSpec(
                        topology=topology,
                        crashes=crashes,
                        sends=sends,
                        seed=seed,
                        backend=backend,
                        max_rounds=max_rounds,
                        faults=plan,
                        name=(
                            f"{backend}:{mix}:s{seed}"
                            f":f{plan.plan_hash()[:6]}"
                        ),
                    )
                )
    return specs


def shrink_demo(out: str = "") -> int:
    """Minimize a violating plan against the broadcast baseline."""
    from repro.faults.shrink import (
        harness_violates,
        repro_payload,
        replay_repro,
        shrink_plan,
        write_repro,
    )

    topology = TopologySpec.capture(disjoint_topology(2, group_size=3))
    plan = random_plan(7, "full", process_count=6, groups=("g1", "g2"))
    spec = ScenarioSpec(
        topology=topology,
        # One send, one destination group: every step g2 takes for it is
        # non-genuine, so the baseline's Minimality violation is intrinsic.
        sends=(Send(1, "g1", 0),),
        faults=plan,
        name="broadcast-baseline",
    )
    minimal, shrinker = shrink_plan(spec, harness="broadcast")
    payload = repro_payload(
        spec, minimal, plan, harness="broadcast", shrinker=shrinker
    )
    print(
        f"shrink-demo: {len(plan)} events -> {len(minimal)} "
        f"({shrinker.evaluations} evaluations); "
        f"verdicts {payload['verdicts']}"
    )
    replay = replay_repro(payload)
    if replay["verdicts"] != payload["verdicts"]:
        print("shrink-demo: replay diverged from repro document")
        return 1
    if out:
        write_repro(out, payload)
        print(f"wrote {out}")
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if len(minimal) <= 3 else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="run the nemesis fault-injection smoke matrix",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=5,
        help="seeds per (backend, mix) cell (default: 5)",
    )
    parser.add_argument(
        "--mixes",
        default=",".join(MIXES),
        metavar="MIXES",
        help=f"comma-separated injector mixes (default: {','.join(MIXES)})",
    )
    parser.add_argument(
        "--backends",
        default="engine,kernel",
        metavar="BACKENDS",
        help="comma-separated backends to sweep (default: engine,kernel)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial in-process execution)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="directory to write manifest.json + results.jsonl into",
    )
    parser.add_argument(
        "--shrink-demo",
        action="store_true",
        help="also run the broadcast-baseline shrinker demo",
    )
    parser.add_argument(
        "--repro-out",
        metavar="FILE",
        default="",
        help="where --shrink-demo writes its repro document",
    )
    args = parser.parse_args(argv)

    specs = matrix_specs(
        seeds=args.seeds,
        mixes=tuple(m.strip() for m in args.mixes.split(",") if m.strip()),
        backends=tuple(
            b.strip() for b in args.backends.split(",") if b.strip()
        ),
    )
    report = run_campaign(specs, workers=args.workers)

    print(sweep_table(report.rows))
    print()
    summary = report.summary
    print(
        f"fault matrix: {summary['scenarios']} scenarios, "
        f"{summary['ok']} ok, {summary['failed']} failed, "
        f"{summary['truncated']} truncated, "
        f"{sum(summary['violations'].values())} property violations "
        f"[{report.elapsed:.2f}s]"
    )
    if args.out:
        paths = report.write(args.out)
        print(f"wrote {paths['manifest']} and {paths['results']}")

    bad = summary["failed"] + summary["violating_scenarios"] + summary["truncated"]
    status = 1 if bad else 0
    if args.shrink_demo:
        status = max(status, shrink_demo(args.repro_out))
    return status


if __name__ == "__main__":
    sys.exit(main())
