"""Nemesis fault injection: perturb runs *within* model admissibility.

The paper's claims quantify over every admissible schedule; the seeded
shuffle alone exercises one benign schedule per seed.  This package
closes the gap:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultEvent`,
  the frozen, hashable, JSON-round-trippable description of a
  perturbation (the nemesis analogue of
  :class:`repro.workloads.ScenarioSpec`);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, one plan bound
  to one run, consulted by the scheduler (churn), the message buffer
  (link faults), the kernel's detector modules and the engine's quorum
  guard (detector noise), with a post-run admissibility audit;
* :mod:`repro.faults.nemesis` — seeded random plan generation and the
  nemesis campaign grid (imported lazily: it depends on the workloads
  and campaign layers, which in turn import :mod:`repro.faults.plan`);
* :mod:`repro.faults.shrink` — the ddmin counterexample shrinker and
  self-contained repro files (lazy for the same reason).

Import :class:`FaultPlan`/:class:`FaultInjector` from here; import the
harnesses from their submodules (``repro.faults.nemesis``,
``repro.faults.shrink``) to keep the layering acyclic.
"""

from repro.faults.injector import (
    AdmissibilityError,
    FaultInjector,
    SendVerdict,
    derive_injector_seed,
    group_index_map,
    injector_for,
)
from repro.faults.plan import (
    DETECTOR_KINDS,
    EVENT_KINDS,
    LINK_KINDS,
    PLAN_SCHEMA_VERSION,
    SCHEDULE_KINDS,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    plan_of,
)

__all__ = [
    "AdmissibilityError",
    "DETECTOR_KINDS",
    "EVENT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "LINK_KINDS",
    "PLAN_SCHEMA_VERSION",
    "SCHEDULE_KINDS",
    "SendVerdict",
    "derive_injector_seed",
    "group_index_map",
    "injector_for",
    "plan_of",
]
