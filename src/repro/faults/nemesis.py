"""The random nemesis: seeded adversarial plan generation.

A nemesis campaign sweeps Algorithm 1 (or the kernel's replicated logs)
across *random admissible perturbations*: for each seed,
:func:`random_plan` draws a :class:`repro.faults.plan.FaultPlan` from one
of the named :data:`MIXES` (link-level chaos, detector-level noise, or
everything at once) and the campaign machinery runs the spec under it.
Everything is derived from the seed — generating the same mix at the
same seed twice yields the identical plan, so a red row names its plan
by hash and the plan is reconstructible from the row alone.

Intensities are deliberately *smoke-level*: windows of a handful of
rounds, budgets of a few datagrams.  The point of the nemesis is not
volume but coverage — schedules the benign seeded shuffle would never
produce — and every drawn plan stays inside the model's admissibility
envelope by construction (finite windows, drop-with-retransmit, noise
pinned to full scopes).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.faults.plan import FaultEvent, FaultPlan
from repro.model.errors import ModelError

#: The named injector mixes a nemesis campaign sweeps.  ``"recovery"``
#: and ``"chaos"`` are additive: the pre-existing names keep their
#: seeded draw streams byte-identical (each name seeds its own RNG), so
#: every frozen plan hash of the old mixes survives the new kinds.
MIXES = ("links", "detectors", "full", "recovery", "chaos")

#: The event families a *weighted* mix draws from (see
#: :func:`random_plan`'s ``weights``): the named-mix families plus
#: ``"crashes"``, which named mixes only reach via ``with_crashes``,
#: and ``"recovery"`` (partition / crash-recover / flaky-link events).
FAMILIES = ("links", "detectors", "schedule", "crashes", "recovery")


def normalize_weights(
    weights: Mapping[str, float]
) -> Dict[str, float]:
    """Validate a family-weight mapping and normalize it to sum 1, once.

    Rejects unknown families, non-numeric, negative, NaN and infinite
    weights, and all-zero mappings — a malformed weight must fail loudly
    at plan-draw time, not silently skew a corpus.  The result is the
    canonical form :func:`random_plan` seeds its RNG stream from, so two
    weight mappings that normalize equal draw identical plans.
    """
    if not weights:
        raise ModelError("nemesis weights: empty mapping")
    normalized: Dict[str, float] = {}
    for family in sorted(weights):
        if family not in FAMILIES:
            raise ModelError(
                f"nemesis weights: unknown family {family!r}; "
                f"pick from {FAMILIES}"
            )
        value = weights[family]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ModelError(
                f"nemesis weights: {family} weight {value!r} is not a number"
            )
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise ModelError(
                f"nemesis weights: {family} weight {value!r} is not finite"
            )
        if value < 0:
            raise ModelError(
                f"nemesis weights: {family} weight {value} is negative"
            )
        normalized[family] = value
    total = sum(normalized.values())
    if total <= 0:
        raise ModelError("nemesis weights: all weights are zero")
    return {family: value / total for family, value in normalized.items()}


def _link_events(
    rng: random.Random, process_count: int, horizon: int
) -> List[FaultEvent]:
    """A handful of link-level perturbations inside ``[1, horizon)``."""
    events: List[FaultEvent] = []
    start = rng.randint(1, max(1, horizon // 3))
    until = start + rng.randint(3, 8)
    events.append(
        FaultEvent(
            kind="link_delay", start=start, until=until,
            amount=rng.randint(1, 4),
        )
    )
    if rng.random() < 0.7:
        start = rng.randint(1, max(1, horizon // 2))
        events.append(
            FaultEvent(
                kind="link_reorder", start=start,
                until=start + rng.randint(3, 8), amount=rng.randint(2, 4),
            )
        )
    if rng.random() < 0.5:
        start = rng.randint(1, max(1, horizon // 2))
        events.append(
            FaultEvent(
                kind="link_dup", start=start,
                until=start + rng.randint(2, 6), amount=rng.randint(1, 3),
            )
        )
    if rng.random() < 0.5:
        start = rng.randint(1, max(1, horizon // 2))
        events.append(
            FaultEvent(
                kind="link_drop", start=start,
                until=start + rng.randint(2, 6), amount=rng.randint(1, 3),
            )
        )
    return events


def _detector_events(
    rng: random.Random,
    groups: Sequence[str],
    horizon: int,
) -> List[FaultEvent]:
    """Detector-noise windows: Sigma false suspicion, late Omega,
    delayed gamma — each scoped to a random group (or globally)."""
    events: List[FaultEvent] = []
    scope = rng.choice((None,) + tuple(groups)) if groups else None
    start = rng.randint(1, max(1, horizon // 3))
    events.append(
        FaultEvent(
            kind="sigma_noise", group=scope, start=start,
            until=start + rng.randint(2, 6),
        )
    )
    if rng.random() < 0.7:
        scope = rng.choice((None,) + tuple(groups)) if groups else None
        events.append(
            FaultEvent(
                kind="omega_late", group=scope,
                until=rng.randint(3, horizon),
            )
        )
    if rng.random() < 0.5:
        events.append(
            FaultEvent(kind="gamma_delay", amount=rng.randint(1, 3))
        )
    return events


def _schedule_events(
    rng: random.Random, process_count: int, horizon: int
) -> List[FaultEvent]:
    """Participation churn (and, sparingly, a staggered crash burst)."""
    events: List[FaultEvent] = []
    if process_count >= 2 and rng.random() < 0.6:
        victim = rng.randint(1, process_count)
        start = rng.randint(1, max(1, horizon // 2))
        events.append(
            FaultEvent(
                kind="churn", start=start,
                until=start + rng.randint(2, 5), targets=(victim,),
            )
        )
    return events


def _crash_events(
    rng: random.Random, process_count: int, horizon: int
) -> List[FaultEvent]:
    """A single staggered crash burst (admissible: §5.2 environments
    are closed under extra crashes)."""
    if process_count < 3:
        return []
    victim = rng.randint(1, process_count)
    return [
        FaultEvent(
            kind="crash_burst",
            start=rng.randint(2, max(2, horizon // 2)),
            amount=rng.randint(1, 3),
            targets=(victim,),
        )
    ]


def _recovery_events(
    rng: random.Random, process_count: int, horizon: int
) -> List[FaultEvent]:
    """Recovery-axis events — each admissible by construction: the
    partition heals at its window close (crossing wakes retransmit at
    heal time), the crashed process rejoins from its durable snapshot,
    and flaky drops carry bounded retransmission deadlines."""
    events: List[FaultEvent] = []
    if process_count >= 2:
        size = rng.randint(1, max(1, process_count // 2))
        component = tuple(
            sorted(rng.sample(range(1, process_count + 1), size))
        )
        start = rng.randint(1, max(1, horizon // 2))
        events.append(
            FaultEvent(
                kind="partition", start=start,
                until=start + rng.randint(2, 6), targets=component,
            )
        )
    if process_count >= 3 and rng.random() < 0.6:
        victim = rng.randint(1, process_count)
        start = rng.randint(2, max(2, horizon // 2))
        events.append(
            FaultEvent(
                kind="crash_recover", start=start,
                until=start + rng.randint(3, 8), targets=(victim,),
            )
        )
    if rng.random() < 0.6:
        start = rng.randint(1, max(1, horizon // 2))
        events.append(
            FaultEvent(
                kind="link_flaky", start=start,
                until=start + rng.randint(2, 5), amount=rng.randint(0, 3),
            )
        )
    return events


def random_plan(
    seed: int,
    mix: str = "full",
    process_count: int = 0,
    groups: Sequence[str] = (),
    horizon: int = 12,
    with_crashes: bool = False,
    weights: Optional[Mapping[str, float]] = None,
) -> FaultPlan:
    """Draw one admissible fault plan from a named or weighted mix.

    Args:
        seed: the draw is a pure function of ``(seed, mix/weights, …)``.
        mix: ``"links"`` (delay/reorder/dup/drop), ``"detectors"``
            (sigma noise, late omega, gamma delay), ``"full"`` (both,
            plus churn), ``"recovery"`` (partition / crash-recover /
            flaky link) or ``"chaos"`` (everything).  Ignored when
            ``weights`` is given.
        process_count: universe size (for churn victim selection).
        groups: group names (for detector-noise scoping).
        horizon: rough upper bound for window starts; actual plan
            horizons run a few rounds past it (windows opened near the
            bound still close).
        with_crashes: also draw a staggered crash burst (off by default:
            crash axes usually come from the spec's own pattern).
            Ignored when ``weights`` is given — weighted mixes reach
            crashes through the ``"crashes"`` family weight.
        weights: optional :data:`FAMILIES` → relative-weight mapping
            defining a *custom* mix.  Validated and normalized exactly
            once by :func:`normalize_weights` (negative/NaN/infinite
            weights and all-zero mappings are rejected); the heaviest
            family always draws and lighter families draw with
            probability proportional to their weight.  ``None`` (the
            default) keeps the named-mix draw stream byte-identical to
            every previous release — the frozen-hash test pins this.
    """
    if weights is not None:
        normalized = normalize_weights(weights)
        label = ",".join(
            f"{family}={normalized[family]:.6f}"
            for family in sorted(normalized)
        )
        rng = random.Random(f"nemesis:w[{label}]:{seed}")
        peak = max(normalized.values())
        drawers = {
            "links": lambda: _link_events(rng, process_count, horizon),
            "detectors": lambda: _detector_events(rng, groups, horizon),
            "schedule": lambda: _schedule_events(
                rng, process_count, horizon
            ),
            "crashes": lambda: _crash_events(rng, process_count, horizon),
            "recovery": lambda: _recovery_events(
                rng, process_count, horizon
            ),
        }
        events: List[FaultEvent] = []
        for family in sorted(normalized):
            if normalized[family] <= 0:
                continue
            # The heaviest family has probability 1 (random() < 1.0
            # always holds); zero-weight families never fire.
            if rng.random() < normalized[family] / peak:
                events.extend(drawers[family]())
        return FaultPlan(tuple(events))
    if mix not in MIXES:
        raise ModelError(f"unknown nemesis mix {mix!r}; pick from {MIXES}")
    rng = random.Random(f"nemesis:{mix}:{seed}")
    events = []
    if mix in ("links", "full", "chaos"):
        events.extend(_link_events(rng, process_count, horizon))
    if mix in ("detectors", "full", "chaos"):
        events.extend(_detector_events(rng, groups, horizon))
    if mix in ("full", "chaos"):
        events.extend(_schedule_events(rng, process_count, horizon))
    if mix in ("recovery", "chaos"):
        events.extend(_recovery_events(rng, process_count, horizon))
    if with_crashes and process_count >= 3:
        victim = rng.randint(1, process_count)
        events.append(
            FaultEvent(
                kind="crash_burst",
                start=rng.randint(2, max(2, horizon // 2)),
                amount=rng.randint(1, 3),
                targets=(victim,),
            )
        )
    return FaultPlan(tuple(events))


def nemesis_plans(
    seeds: Iterable[int],
    mixes: Sequence[str] = MIXES,
    process_count: int = 0,
    groups: Sequence[str] = (),
    horizon: int = 12,
) -> Dict[Tuple[str, int], FaultPlan]:
    """The plan grid of a nemesis campaign: ``(mix, seed) -> plan``."""
    return {
        (mix, seed): random_plan(
            seed, mix, process_count=process_count,
            groups=groups, horizon=horizon,
        )
        for mix in mixes
        for seed in seeds
    }
