"""The random nemesis: seeded adversarial plan generation.

A nemesis campaign sweeps Algorithm 1 (or the kernel's replicated logs)
across *random admissible perturbations*: for each seed,
:func:`random_plan` draws a :class:`repro.faults.plan.FaultPlan` from one
of the named :data:`MIXES` (link-level chaos, detector-level noise, or
everything at once) and the campaign machinery runs the spec under it.
Everything is derived from the seed — generating the same mix at the
same seed twice yields the identical plan, so a red row names its plan
by hash and the plan is reconstructible from the row alone.

Intensities are deliberately *smoke-level*: windows of a handful of
rounds, budgets of a few datagrams.  The point of the nemesis is not
volume but coverage — schedules the benign seeded shuffle would never
produce — and every drawn plan stays inside the model's admissibility
envelope by construction (finite windows, drop-with-retransmit, noise
pinned to full scopes).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultEvent, FaultPlan
from repro.model.errors import ModelError

#: The named injector mixes a nemesis campaign sweeps.
MIXES = ("links", "detectors", "full")


def _link_events(
    rng: random.Random, process_count: int, horizon: int
) -> List[FaultEvent]:
    """A handful of link-level perturbations inside ``[1, horizon)``."""
    events: List[FaultEvent] = []
    start = rng.randint(1, max(1, horizon // 3))
    until = start + rng.randint(3, 8)
    events.append(
        FaultEvent(
            kind="link_delay", start=start, until=until,
            amount=rng.randint(1, 4),
        )
    )
    if rng.random() < 0.7:
        start = rng.randint(1, max(1, horizon // 2))
        events.append(
            FaultEvent(
                kind="link_reorder", start=start,
                until=start + rng.randint(3, 8), amount=rng.randint(2, 4),
            )
        )
    if rng.random() < 0.5:
        start = rng.randint(1, max(1, horizon // 2))
        events.append(
            FaultEvent(
                kind="link_dup", start=start,
                until=start + rng.randint(2, 6), amount=rng.randint(1, 3),
            )
        )
    if rng.random() < 0.5:
        start = rng.randint(1, max(1, horizon // 2))
        events.append(
            FaultEvent(
                kind="link_drop", start=start,
                until=start + rng.randint(2, 6), amount=rng.randint(1, 3),
            )
        )
    return events


def _detector_events(
    rng: random.Random,
    groups: Sequence[str],
    horizon: int,
) -> List[FaultEvent]:
    """Detector-noise windows: Sigma false suspicion, late Omega,
    delayed gamma — each scoped to a random group (or globally)."""
    events: List[FaultEvent] = []
    scope = rng.choice((None,) + tuple(groups)) if groups else None
    start = rng.randint(1, max(1, horizon // 3))
    events.append(
        FaultEvent(
            kind="sigma_noise", group=scope, start=start,
            until=start + rng.randint(2, 6),
        )
    )
    if rng.random() < 0.7:
        scope = rng.choice((None,) + tuple(groups)) if groups else None
        events.append(
            FaultEvent(
                kind="omega_late", group=scope,
                until=rng.randint(3, horizon),
            )
        )
    if rng.random() < 0.5:
        events.append(
            FaultEvent(kind="gamma_delay", amount=rng.randint(1, 3))
        )
    return events


def _schedule_events(
    rng: random.Random, process_count: int, horizon: int
) -> List[FaultEvent]:
    """Participation churn (and, sparingly, a staggered crash burst)."""
    events: List[FaultEvent] = []
    if process_count >= 2 and rng.random() < 0.6:
        victim = rng.randint(1, process_count)
        start = rng.randint(1, max(1, horizon // 2))
        events.append(
            FaultEvent(
                kind="churn", start=start,
                until=start + rng.randint(2, 5), targets=(victim,),
            )
        )
    return events


def random_plan(
    seed: int,
    mix: str = "full",
    process_count: int = 0,
    groups: Sequence[str] = (),
    horizon: int = 12,
    with_crashes: bool = False,
) -> FaultPlan:
    """Draw one admissible fault plan from a named mix, by seed.

    Args:
        seed: the draw is a pure function of ``(seed, mix, …)``.
        mix: ``"links"`` (delay/reorder/dup/drop), ``"detectors"``
            (sigma noise, late omega, gamma delay) or ``"full"`` (both,
            plus churn).
        process_count: universe size (for churn victim selection).
        groups: group names (for detector-noise scoping).
        horizon: rough upper bound for window starts; actual plan
            horizons run a few rounds past it (windows opened near the
            bound still close).
        with_crashes: also draw a staggered crash burst (off by default:
            crash axes usually come from the spec's own pattern).
    """
    if mix not in MIXES:
        raise ModelError(f"unknown nemesis mix {mix!r}; pick from {MIXES}")
    rng = random.Random(f"nemesis:{mix}:{seed}")
    events: List[FaultEvent] = []
    if mix in ("links", "full"):
        events.extend(_link_events(rng, process_count, horizon))
    if mix in ("detectors", "full"):
        events.extend(_detector_events(rng, groups, horizon))
    if mix == "full":
        events.extend(_schedule_events(rng, process_count, horizon))
    if with_crashes and process_count >= 3:
        victim = rng.randint(1, process_count)
        events.append(
            FaultEvent(
                kind="crash_burst",
                start=rng.randint(2, max(2, horizon // 2)),
                amount=rng.randint(1, 3),
                targets=(victim,),
            )
        )
    return FaultPlan(tuple(events))


def nemesis_plans(
    seeds: Iterable[int],
    mixes: Sequence[str] = MIXES,
    process_count: int = 0,
    groups: Sequence[str] = (),
    horizon: int = 12,
) -> Dict[Tuple[str, int], FaultPlan]:
    """The plan grid of a nemesis campaign: ``(mix, seed) -> plan``."""
    return {
        (mix, seed): random_plan(
            seed, mix, process_count=process_count,
            groups=groups, horizon=horizon,
        )
        for mix in mixes
        for seed in seeds
    }
