"""The nemesis runtime: one :class:`FaultInjector` per faulted run.

A :class:`repro.faults.plan.FaultPlan` is pure data; the injector is its
executable form, bound to one run.  The execution hosts each consult the
slice of the injector they understand:

* :class:`repro.runtime.Scheduler` asks :meth:`FaultInjector.suppresses`
  before scheduling an actor (participation churn);
* :class:`repro.model.messages.MessageBuffer` routes every ``send``
  through :meth:`FaultInjector.on_send` (delay / duplicate / drop with
  retransmit) and every ``receive`` through
  :meth:`FaultInjector.pick_receive` (bounded reordering);
* :class:`repro.sim.Kernel` wraps its detector modules with
  :meth:`FaultInjector.wrap_detector` (Sigma/Omega noise);
* :class:`repro.core.engine.MulticastSystem` consults
  :meth:`FaultInjector.sigma_noisy`, :meth:`FaultInjector.omega_delays`
  and :meth:`FaultInjector.extra_gamma_lag` when building its oracles
  and evaluating its quorum guard.

Three invariants keep faulted runs honest:

* **No plan, no change** — hosts take ``injector=None`` and guard every
  new branch on it, so a plan-free run is byte-identical to the
  pre-nemesis engine (pinned by the runtime golden suite).
* **Own RNG** — all injector randomness flows through a private
  :class:`random.Random` seeded from ``(plan hash, run seed)``, never
  the host's schedule RNG; a faulted run is therefore byte-replayable
  and the schedule of the *unperturbed* actions is unchanged.
* **Audited admissibility** — :meth:`FaultInjector.audit` re-checks,
  after the run, that the dynamic behaviour stayed inside the model:
  bounded duplication, every drop retransmitted, every delayed datagram
  released by the horizon, crash monotonicity preserved.  An injector
  can be wrong, but never silently.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.detectors.base import FailureDetector
from repro.model.errors import ModelError
from repro.model.failures import FailurePattern, Time
from repro.faults.plan import FaultEvent, FaultPlan


class AdmissibilityError(ModelError):
    """A fault plan violated the model's admissibility conditions."""


def derive_injector_seed(plan: FaultPlan, seed: int) -> int:
    """The injector RNG seed: a pure function of (plan, run seed)."""
    blob = f"{plan.plan_hash()}:{seed}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


class SendVerdict:
    """What the injector decided about one datagram send.

    Attributes:
        delay: rounds before the datagram becomes receivable.
        copies: extra duplicates to mint (each delayed like the original).
        dropped: the original send is lost; ``retransmit_at`` names the
            absolute time at which the link's retransmission becomes
            receivable (never None when ``dropped`` — fair-lossy links
            always retransmit).
    """

    __slots__ = ("delay", "copies", "dropped", "retransmit_at")

    def __init__(
        self,
        delay: int = 0,
        copies: int = 0,
        dropped: bool = False,
        retransmit_at: Optional[Time] = None,
    ) -> None:
        self.delay = delay
        self.copies = copies
        self.dropped = dropped
        self.retransmit_at = retransmit_at


#: The verdict of an unfaulted send — shared, immutable by convention.
BENIGN_SEND = SendVerdict()


class FaultInjector:
    """One plan bound to one run: the hosts' shared nemesis.

    Args:
        plan: the perturbations to realize.
        group_members: group name -> member *indices* (the scoping map
            for detector events); pass
            :func:`group_index_map` of the run's topology.
        seed: the run's scheduling seed; the injector derives its own
            RNG from ``(plan hash, seed)`` so fault randomness never
            touches the host's schedule RNG stream.
    """

    def __init__(
        self,
        plan: FaultPlan,
        group_members: Optional[Dict[str, FrozenSet[int]]] = None,
        seed: int = 0,
    ) -> None:
        self.plan = plan
        self.groups: Dict[str, FrozenSet[int]] = dict(group_members or {})
        self.rng = random.Random(derive_injector_seed(plan, seed))
        self.horizon: Time = plan.horizon()
        #: What actually happened, for rows / audits / diagnostics.
        self.stats: Dict[str, int] = {
            "delayed": 0,
            "duplicated": 0,
            "dropped": 0,
            "retransmitted": 0,
            "reordered": 0,
            "suppressed": 0,
            "sigma_noised": 0,
            "omega_rotated": 0,
            "partitioned": 0,
            "flaky_dropped": 0,
            "flaky_retransmitted": 0,
            "recovered": 0,
        }
        self._delays = plan.by_kind("link_delay")
        self._reorders = plan.by_kind("link_reorder")
        self._dups = list(plan.by_kind("link_dup"))
        self._drops = list(plan.by_kind("link_drop"))
        self._partitions = plan.by_kind("partition")
        self._flaky = plan.by_kind("link_flaky")
        self._recovers = plan.by_kind("crash_recover")
        self._dup_budget: Dict[FaultEvent, int] = {
            e: e.amount for e in self._dups
        }
        self._drop_budget: Dict[FaultEvent, int] = {
            e: e.amount for e in self._drops
        }
        self._sigma_noise = plan.by_kind("sigma_noise")
        self._omega_late = plan.by_kind("omega_late")
        self._gamma = plan.by_kind("gamma_delay")
        self._bursts = plan.by_kind("crash_burst")
        self._churn = plan.by_kind("churn")
        self._base_pattern: Optional[FailurePattern] = None

    # -- Failure pattern (crash bursts) -----------------------------------

    def perturb_pattern(self, pattern: FailurePattern) -> FailurePattern:
        """Apply the plan's crash bursts and crash–recovery events.

        Bursts are monotone by construction
        (:meth:`FailurePattern.with_crash` keeps the earliest crash
        time); the audit re-checks that no crash moved later.  A
        ``crash_recover`` crashes its victim at ``start`` and rejoins
        it at ``until`` — but *never* resurrects a process the base
        pattern crashes on its own (base crashes are facts of the
        environment, not of the plan), so crash monotonicity of the
        base pattern is preserved by construction.
        """
        self._base_pattern = pattern
        perturbed = pattern
        for event in self._bursts:
            for offset, index in enumerate(sorted(event.targets)):
                for p in pattern.processes:
                    if p.index == index:
                        perturbed = perturbed.with_crash(
                            p, event.start + offset * event.amount
                        )
                        break
                else:
                    raise AdmissibilityError(
                        f"crash_burst targets unknown process index {index}"
                    )
        for event in self._recovers:
            index = event.targets[0]
            for p in pattern.processes:
                if p.index == index:
                    if p in pattern.crash_times:
                        # The environment already crashes this process;
                        # the plan may not un-crash it.
                        break
                    perturbed = perturbed.with_crash(
                        p, event.start
                    ).with_recovery(p, event.until)
                    self.stats["recovered"] += 1
                    break
            else:
                raise AdmissibilityError(
                    f"crash_recover targets unknown process index {index}"
                )
        self._perturbed_pattern = perturbed
        return perturbed

    # -- Scheduler hook (participation churn) -----------------------------

    def suppresses(self, key: Any, t: Time) -> bool:
        """Whether actor ``key`` must take no step at time ``t``.

        Keys without a process index (whole-system actors) are never
        suppressed — churn is a per-process notion.
        """
        index = getattr(key, "index", None)
        if index is None:
            return False
        for event in self._churn:
            if index in event.targets and event.active(t):
                self.stats["suppressed"] += 1
                return True
        return False

    # -- Message-buffer hooks (link faults) -------------------------------

    def on_send(self, src_index: int, dst_index: int, t: Time) -> SendVerdict:
        """Judge one datagram send on the ``src -> dst`` link at ``t``."""
        if not (
            self._delays
            or self._dups
            or self._drops
            or self._partitions
            or self._flaky
        ):
            return BENIGN_SEND
        for event in self._partitions:
            if event.active(t) and event.cuts(src_index, dst_index):
                self.stats["partitioned"] += 1
                # The cut heals at ``until``: every crossing datagram
                # is retransmitted then (fair lossy by construction —
                # no budget, no randomness).
                return SendVerdict(
                    dropped=True, retransmit_at=max(event.until, t + 1)
                )
        for event in self._flaky:
            if (
                event.active(t)
                and event.matches_link(src_index, dst_index)
                and self.rng.random() < 0.5
            ):
                self.stats["flaky_dropped"] += 1
                self.stats["flaky_retransmitted"] += 1
                jitter = (
                    self.rng.randrange(event.amount) if event.amount else 0
                )
                # Unconditional per-datagram retransmission shortly
                # after the drop — flaky links lose sends, never
                # messages.
                return SendVerdict(dropped=True, retransmit_at=t + 1 + jitter)
        delay = 0
        for event in self._delays:
            if event.active(t) and event.matches_link(src_index, dst_index):
                delay = max(delay, event.amount)
        for event in self._drops:
            if (
                event.active(t)
                and event.matches_link(src_index, dst_index)
                and self._drop_budget[event] > 0
                and self.rng.random() < 0.5
            ):
                self._drop_budget[event] -= 1
                self.stats["dropped"] += 1
                self.stats["retransmitted"] += 1
                # Fair-lossy: the retransmission is unconditional and
                # lands when the lossy window closes (plus transit).
                return SendVerdict(
                    dropped=True, retransmit_at=max(event.until, t + 1)
                )
        copies = 0
        for event in self._dups:
            if (
                event.active(t)
                and event.matches_link(src_index, dst_index)
                and self._dup_budget[event] > 0
                and self.rng.random() < 0.5
            ):
                self._dup_budget[event] -= 1
                self.stats["duplicated"] += 1
                copies += 1
        if delay:
            self.stats["delayed"] += 1 + copies
        if delay == 0 and copies == 0:
            return BENIGN_SEND
        return SendVerdict(delay=delay, copies=copies)

    def link_clear(self, src_index: int, dst_index: int, t: Time) -> bool:
        """Whether a (re)transmission attempt at ``t`` faces a clear
        channel.

        Side-effect-free and RNG-free — the async driver's retry ladder
        probes this to decide which backoff attempts could land: inside
        an active partition cut, a flaky window, or a budgeted lossy
        window the attempt is presumed lost (the pessimistic answer is
        always admissible; it only delays delivery to the fair-lossy
        backstop).
        """
        for event in self._partitions:
            if event.active(t) and event.cuts(src_index, dst_index):
                return False
        for event in self._flaky:
            if event.active(t) and event.matches_link(src_index, dst_index):
                return False
        for event in self._drops:
            if (
                event.active(t)
                and event.matches_link(src_index, dst_index)
                and self._drop_budget[event] > 0
            ):
                return False
        return True

    def pick_receive(self, dst_index: int, ready: int, t: Time) -> int:
        """Index (into the FIFO queue) of the datagram to extract.

        Bounded adversarial reordering: during an active
        ``link_reorder`` window the receiver gets a random datagram
        among the first ``amount`` receivable ones; outside any window
        (or with a single candidate) extraction is FIFO.
        """
        if ready <= 1:
            return 0
        for event in self._reorders:
            if event.active(t) and (
                event.dst is None or event.dst == dst_index
            ):
                pick = self.rng.randrange(min(event.amount, ready))
                if pick:
                    self.stats["reordered"] += 1
                return pick
        return 0

    # -- Detector hooks ----------------------------------------------------

    def _scope_noisy(self, scope_indices: FrozenSet[int], t: Time) -> bool:
        for event in self._sigma_noise:
            if not event.active(t):
                continue
            if event.group is None:
                return True
            members = self.groups.get(event.group)
            if members is not None and scope_indices <= members:
                return True
        return False

    def sigma_noisy(self, scope_indices: FrozenSet[int], t: Time) -> bool:
        """Whether ``Sigma`` over this scope is inside a noise window.

        During the window the sample is pinned to the *full* scope:
        any two pinned/true samples still intersect (the true sample
        always contains an alive scope member), so Intersection holds;
        Liveness only constrains the suffix after the window.
        """
        noisy = self._scope_noisy(scope_indices, t)
        if noisy:
            self.stats["sigma_noised"] += 1
        return noisy

    def omega_delays(self) -> Tuple[Tuple[Optional[str], Time], ...]:
        """The plan's ``(group, stabilization floor)`` pairs."""
        return tuple((e.group, e.until) for e in self._omega_late)

    def omega_unstable(self, scope_indices: FrozenSet[int], t: Time) -> bool:
        """Whether ``Omega`` over this scope is still inside a noise
        window (the reported leader may rotate among alive members)."""
        for event in self._omega_late:
            if t >= event.until:
                continue
            if event.group is None:
                return True
            members = self.groups.get(event.group)
            if members is not None and scope_indices <= members:
                return True
        return False

    def extra_gamma_lag(self) -> Time:
        """Additional gamma detection lag contributed by the plan."""
        return sum(e.amount for e in self._gamma)

    def wrap_detector(self, detector: FailureDetector) -> FailureDetector:
        """Wrap a kernel detector module with the plan's noise.

        Only samplers exposing ``sigma`` / ``omega`` oracle attributes
        (the :class:`repro.substrates.consensus.OmegaSigmaSampler`
        shape) are perturbed; anything else passes through untouched.
        """
        if hasattr(detector, "sigma") or hasattr(detector, "omega"):
            return _NoisySampler(detector, self)
        return detector

    # -- Audit -------------------------------------------------------------

    def audit(
        self,
        final_time: Time,
        buffer: Optional[Any] = None,
        pattern: Optional[FailurePattern] = None,
    ) -> List[str]:
        """Post-run admissibility audit; returns violation strings.

        Checks the *dynamic* half of the plan's promises (the static
        half — finite windows, bounded budgets — is enforced by
        :class:`repro.faults.plan.FaultEvent` validation):

        * bounded duplication and loss: stats never exceed budgets;
        * fair-lossy links: every dropped datagram was retransmitted;
        * no forgotten datagram: once the run is past the horizon the
          delay heap must be *empty* — every release time is bounded by
          the horizon, and crash cleanup purges entries for dead
          destinations, so anything still sequestered is a datagram a
          host forgot to release (not merely the overdue subset: a
          sequestered datagram with a bogus future release time is just
          as lost to its alive destination);
        * crash monotonicity: the perturbed pattern never un-crashes or
          postpones a crash of the base pattern.
        """
        violations: List[str] = []
        dup_budget = sum(e.amount for e in self._dups)
        if self.stats["duplicated"] > dup_budget:
            violations.append(
                f"duplication exceeded budget: {self.stats['duplicated']} > "
                f"{dup_budget}"
            )
        drop_budget = sum(e.amount for e in self._drops)
        if self.stats["dropped"] > drop_budget:
            violations.append(
                f"drops exceeded budget: {self.stats['dropped']} > "
                f"{drop_budget}"
            )
        if self.stats["dropped"] != self.stats["retransmitted"]:
            violations.append(
                f"fair-lossy violated: {self.stats['dropped']} drops but "
                f"{self.stats['retransmitted']} retransmissions"
            )
        if self.stats["flaky_dropped"] != self.stats["flaky_retransmitted"]:
            violations.append(
                f"fair-lossy violated on flaky links: "
                f"{self.stats['flaky_dropped']} drops but "
                f"{self.stats['flaky_retransmitted']} retransmissions"
            )
        if buffer is not None and final_time >= self.horizon:
            sequestered = buffer.delayed_count()
            if sequestered:
                violations.append(
                    f"{sequestered} datagram(s) still sequestered in the "
                    f"delay queue at t={final_time} (plan horizon "
                    f"{self.horizon})"
                )
        if pattern is not None and self._base_pattern is not None:
            for p, when in self._base_pattern.crash_times.items():
                moved = pattern.crash_times.get(p)
                if moved is None or moved > when:
                    violations.append(
                        f"crash monotonicity violated at {p.name}: "
                        f"{when} -> {moved}"
                    )
                if pattern.recovery_times.get(p) is not None:
                    violations.append(
                        f"recovery resurrects a base-pattern crash at "
                        f"{p.name} (crashed at {when})"
                    )
            for p, rejoin in pattern.recovery_times.items():
                crashed = pattern.crash_times.get(p)
                if crashed is None or rejoin <= crashed:
                    violations.append(
                        f"recovery at {p.name} without a preceding crash "
                        f"({crashed} -> {rejoin})"
                    )
        return violations

    def summary(self) -> Dict[str, Any]:
        """Row-ready description of what the injector actually did."""
        return {
            "plan_hash": self.plan.plan_hash(),
            "events": len(self.plan),
            "horizon": self.horizon,
            "stats": {k: v for k, v in self.stats.items() if v},
        }


class _NoisySampler(FailureDetector):
    """A kernel detector module filtered through the plan's noise.

    Wraps samplers shaped like
    :class:`repro.substrates.consensus.OmegaSigmaSampler`: dict samples
    with ``"sigma"`` / ``"omega"`` entries, oracles with a ``scope``.
    During a ``sigma_noise`` window the quorum sample is pinned to the
    full scope (operations must hear from everyone, including the
    crashed — they stall, admissibly, until the window closes).  During
    an ``omega_late`` window the reported leader rotates among the
    alive scope members — deterministically by time, so replays are
    byte-identical without consuming injector randomness.
    """

    kind = "noisy"

    def __init__(self, inner: FailureDetector, injector: FaultInjector) -> None:
        super().__init__()
        self.inner = inner
        self.injector = injector

    def query(self, p, t):  # noqa: ANN001 - FailureDetector signature
        sample = self.inner.query(p, t)
        if not isinstance(sample, dict):
            return sample
        sample = dict(sample)
        sigma = getattr(self.inner, "sigma", None)
        if sigma is not None and "sigma" in sample:
            scope = frozenset(q.index for q in sigma.scope)
            if self.injector.sigma_noisy(scope, t):
                sample["sigma"] = sigma.scope
        omega = getattr(self.inner, "omega", None)
        if omega is not None and "omega" in sample:
            scope = frozenset(q.index for q in omega.scope)
            if self.injector.omega_unstable(scope, t):
                alive = [
                    q
                    for q in sorted(omega.scope)
                    if omega.pattern.is_alive(q, t)
                ]
                if alive:
                    self.injector.stats["omega_rotated"] += 1
                    sample["omega"] = alive[t % len(alive)]
        return sample


def group_index_map(topology) -> Dict[str, FrozenSet[int]]:
    """Group name -> member indices, the injector's scoping map."""
    return {
        g.name: frozenset(p.index for p in g.members)
        for g in topology.groups
    }


def injector_for(
    plan: Optional[FaultPlan], topology, seed: int = 0
) -> Optional[FaultInjector]:
    """An injector for ``plan`` (None when there is no plan)."""
    if plan is None:
        return None
    return FaultInjector(plan, group_index_map(topology), seed=seed)
