"""Run instrumentation: per-round counters and a JSONL trace exporter.

The engine (and, more coarsely, the step kernel) report what each round
actually cost: how many processes were *eligible* to act, how many were
scanned versus skipped by the event-driven scheduler, how many actions
fired, how often a quorum guard stalled an operation and how often the
detector oracles were consulted.  Together with the per-process *wait
reasons* reported by :class:`repro.core.algorithm1.Algorithm1Process`,
a trace answers the two questions every scaling experiment asks: where
did the rounds go, and what was everybody waiting for.

Trace format (one JSON object per line):

* ``{"type": "meta", ...}`` — first line: schema version plus free-form
  run metadata supplied by the exporter's caller;
* ``{"type": "round", ...}`` — one line per executed round, see
  :class:`RoundTrace` for the fields;
* ``{"type": "summary", ...}`` — last line: the totals of
  :meth:`TraceRecorder.summary`.

The schema is documented in DESIGN.md ("Run instrumentation") and the
reading guide lives in EXPERIMENTS.md ("Reading a trace").
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

#: Trace schema version, bumped on breaking field changes.
TRACE_SCHEMA_VERSION = 1

#: Wait reasons an action system may report (see Algorithm1Process).
WAIT_QUORUM = "quorum"  # a Sigma_S quorum cannot respond right now
WAIT_GAMMA = "gamma"  # waiting for a gamma-partner position record
WAIT_CONSENSUS = "consensus"  # waiting for CONS_{m,f} availability
WAIT_ORDER = "order"  # waiting for earlier log entries to progress
WAIT_INDICATOR = "indicator"  # strict variant: waiting on 1^{g∩h}
WAIT_IDLE = "idle"  # nothing known to do

WAIT_REASONS = (
    WAIT_QUORUM,
    WAIT_GAMMA,
    WAIT_CONSENSUS,
    WAIT_ORDER,
    WAIT_INDICATOR,
    WAIT_IDLE,
)


@dataclass(slots=True)
class RoundTrace:
    """The counters of one executed round.

    Attributes:
        round: 1-based index of the round within the run.
        time: the global clock after the round's tick.
        eligible: processes that were alive and inside the participation
            set — what a scan-everything engine would have scanned.
        scanned: processes whose action scan actually ran.
        skipped: processes the wake-index proved idle (``eligible -
            scanned``).
        actions: actions fired across the system this round.
        full_scan: whether the scheduler fell back to scanning everyone
            (detector-settle window, participation change, or scan mode).
        quorum_queries: quorum-guard evaluations this round.
        quorum_stalls: quorum-guard evaluations that returned False.
        gamma_queries: gamma oracle consultations.
        indicator_queries: indicator oracle consultations.
        wait_reasons: histogram of why scanned-but-idle processes were
            blocked at the end of their scan.
    """

    round: int
    time: int
    eligible: int
    scanned: int
    skipped: int
    actions: int
    full_scan: bool
    quorum_queries: int = 0
    quorum_stalls: int = 0
    gamma_queries: int = 0
    indicator_queries: int = 0
    wait_reasons: Dict[str, int] = field(default_factory=dict)


class TraceRecorder:
    """Accumulates per-round counters for one run.

    The runtime drives it with :meth:`begin_round` / :meth:`end_round`;
    in between, the guards and oracles report events through the
    ``note_*`` methods.  Events reported outside a round (e.g. a direct
    ``quorum_ok`` probe from a test) fall into the next round's window.
    """

    def __init__(self) -> None:
        self.rounds: List[RoundTrace] = []
        # All per-round counters accumulate in plain attributes between
        # begin/end calls; the RoundTrace object is built once per round
        # at end_round (a single batched append instead of per-event
        # dataclass field updates on the scheduler's hot path).
        self._in_round = False
        self._time = 0
        self._eligible = 0
        self._full_scan = False
        self._scanned = 0
        self._skipped = 0
        self._actions = 0
        self._quorum_queries = 0
        self._quorum_stalls = 0
        self._gamma_queries = 0
        self._indicator_queries = 0
        self._wait_reasons: Dict[str, int] = {}
        # Interleaving transitions: compact signatures of *changes* in
        # the (eligible, responders) participation state, reported by
        # ExecutionCore.note_fingerprint.  A whole-run stream — not a
        # per-round counter — because transitions are rare (crash
        # epochs, churn windows) and their *sequence* is the coverage
        # signal the explorer fingerprints schedules by.
        self.transitions: List[str] = []

    # -- Round lifecycle (driven by the engine/kernel) ---------------------

    def begin_round(self, time: int, eligible: int, full_scan: bool) -> None:
        self._in_round = True
        self._time = time
        self._eligible = eligible
        self._full_scan = full_scan
        self._scanned = 0
        self._skipped = 0
        self._actions = 0
        self._quorum_queries = 0
        self._quorum_stalls = 0
        self._gamma_queries = 0
        self._indicator_queries = 0
        self._wait_reasons = {}

    def end_round(self) -> Optional[RoundTrace]:
        if not self._in_round:
            return None
        current = RoundTrace(
            round=len(self.rounds) + 1,
            time=self._time,
            eligible=self._eligible,
            scanned=self._scanned,
            skipped=self._skipped,
            actions=self._actions,
            full_scan=self._full_scan,
            quorum_queries=self._quorum_queries,
            quorum_stalls=self._quorum_stalls,
            gamma_queries=self._gamma_queries,
            indicator_queries=self._indicator_queries,
            wait_reasons=dict(self._wait_reasons),
        )
        self.rounds.append(current)
        self._in_round = False
        return current

    # -- Event sinks (called by guards, oracles, schedulers) ---------------

    def note_scanned(self, fired: int) -> None:
        if self._in_round:
            self._scanned += 1
            self._actions += fired

    def note_skipped(self) -> None:
        if self._in_round:
            self._skipped += 1

    def note_quorum_query(self, available: bool) -> None:
        self._quorum_queries += 1
        if not available:
            self._quorum_stalls += 1

    def note_gamma_query(self) -> None:
        self._gamma_queries += 1

    def note_indicator_query(self) -> None:
        self._indicator_queries += 1

    def note_wait(self, reason: str) -> None:
        self._wait_reasons[reason] = self._wait_reasons.get(reason, 0) + 1

    def note_transition(self, signature: str) -> None:
        """Record one participation-state transition (see ``transitions``)."""
        self.transitions.append(signature)

    # -- Aggregation --------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Whole-run totals, the before/after numbers benchmarks print.

        ``eligible`` is what the seed scan-everything engine would have
        scanned; ``scanned`` is what the event-driven engine did scan —
        their ratio is the headline win of the wake-index.
        """
        eligible = sum(r.eligible for r in self.rounds)
        scanned = sum(r.scanned for r in self.rounds)
        waits: Dict[str, int] = {}
        for r in self.rounds:
            for reason, count in r.wait_reasons.items():
                waits[reason] = waits.get(reason, 0) + count
        return {
            "rounds": len(self.rounds),
            "eligible": eligible,
            "scanned": scanned,
            "skipped": sum(r.skipped for r in self.rounds),
            "actions": sum(r.actions for r in self.rounds),
            "full_scan_rounds": sum(1 for r in self.rounds if r.full_scan),
            "quorum_queries": sum(r.quorum_queries for r in self.rounds),
            "quorum_stalls": sum(r.quorum_stalls for r in self.rounds),
            "gamma_queries": sum(r.gamma_queries for r in self.rounds),
            "indicator_queries": sum(
                r.indicator_queries for r in self.rounds
            ),
            "scan_ratio": (eligible / scanned) if scanned else 0.0,
            "wait_reasons": waits,
            # The interleaving fingerprint: the ordered transition
            # signatures (capped — a pathological schedule cannot bloat
            # the summary) plus the full count, enough for the explorer
            # to tell two schedules apart without storing round logs.
            "interleaving": {
                "transitions": len(self.transitions),
                "signatures": self.transitions[:64],
            },
        }

    # -- Export --------------------------------------------------------------

    def iter_jsonl(
        self, meta: Optional[Mapping[str, Any]] = None
    ) -> Iterator[str]:
        """The trace as JSONL lines: meta, rounds, summary."""
        header: Dict[str, Any] = {
            "type": "meta",
            "schema": TRACE_SCHEMA_VERSION,
        }
        if meta:
            header.update(meta)
        yield json.dumps(header, sort_keys=True, default=str)
        for r in self.rounds:
            body = asdict(r)
            body["type"] = "round"
            yield json.dumps(body, sort_keys=True)
        summary = self.summary()
        summary["type"] = "summary"
        yield json.dumps(summary, sort_keys=True)

    def write_jsonl(
        self, path: str, meta: Optional[Mapping[str, Any]] = None
    ) -> str:
        """Write the trace to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.iter_jsonl(meta):
                fh.write(line + "\n")
        return path


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a trace file back into a list of dicts (tests, tooling)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
