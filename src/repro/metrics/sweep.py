"""Sweep aggregation: turn per-scenario rows into campaign-level facts.

A campaign executor streams one row per finished scenario (see
:meth:`repro.workloads.runner.ScenarioResult.to_row` for the shape of an
``ok`` row; failed scenarios contribute ``status="failed"`` rows with a
traceback).  The :class:`SweepAggregator` folds them into worker-count-
independent totals as they arrive, and :func:`sweep_table` renders rows
with the same fixed-width formatter every benchmark uses.

Aggregates are pure functions of the row *multiset*: the executor feeds
rows in spec order, so the summary — like the rows themselves — is
byte-stable regardless of how many workers produced them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Sequence

from repro.metrics.summary import format_table


class SweepAggregator:
    """Streaming fold over sweep rows.

    Feed rows with :meth:`add`; read :meth:`summary` at any point.  The
    aggregator keeps counters only — it never retains rows — so it
    scales to arbitrarily long sweeps.
    """

    def __init__(self) -> None:
        self.scenarios = 0
        self.ok = 0
        self.failed = 0
        self.delivered = 0
        self.truncated = 0
        self.total_rounds = 0
        self.max_rounds = 0
        self.total_deliveries = 0
        self.total_messages = 0
        self.violations: Dict[str, int] = {}
        self.violating_scenarios = 0

    def add(self, row: Mapping[str, Any]) -> None:
        self.scenarios += 1
        if row.get("status") != "ok":
            self.failed += 1
            return
        self.ok += 1
        if row.get("delivered_everywhere"):
            self.delivered += 1
        if row.get("truncated"):
            self.truncated += 1
        rounds = int(row.get("rounds", 0))
        self.total_rounds += rounds
        self.max_rounds = max(self.max_rounds, rounds)
        self.total_deliveries += int(row.get("deliveries", 0))
        self.total_messages += int(row.get("messages", 0))
        verdicts = row.get("verdicts") or {}
        if any(count for count in verdicts.values()):
            self.violating_scenarios += 1
        for prop, count in verdicts.items():
            self.violations[prop] = self.violations.get(prop, 0) + int(count)

    def summary(self) -> Dict[str, Any]:
        """Worker-count-independent totals of everything seen so far."""
        return {
            "scenarios": self.scenarios,
            "ok": self.ok,
            "failed": self.failed,
            "delivered": self.delivered,
            "truncated": self.truncated,
            "total_rounds": self.total_rounds,
            "mean_rounds": (
                round(self.total_rounds / self.ok, 4) if self.ok else 0.0
            ),
            "max_rounds": self.max_rounds,
            "deliveries": self.total_deliveries,
            "messages": self.total_messages,
            "violations": dict(sorted(self.violations.items())),
            "violating_scenarios": self.violating_scenarios,
        }


def summarize_rows(rows: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """One-shot aggregation (equivalent to streaming every row)."""
    aggregator = SweepAggregator()
    for row in rows:
        aggregator.add(row)
    return aggregator.summary()


def summarize_results_file(path: str) -> Dict[str, Any]:
    """Re-aggregate the row lines of a ``results.jsonl`` artifact.

    Walks the file and folds every ``type="row"`` line through a fresh
    :class:`SweepAggregator` — an integrity check for streamed or
    resumed sweeps: the result must equal the file's own trailing
    summary line (minus its ``type`` tag), whatever mix of executed,
    cached and resumed rows produced the file.
    """
    aggregator = SweepAggregator()
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "row":
                aggregator.add(record)
    return aggregator.summary()


#: Default columns of :func:`sweep_table`.
SWEEP_COLUMNS = ("name", "status", "rounds", "delivered", "truncated", "violations")


def sweep_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] = SWEEP_COLUMNS,
) -> str:
    """Render sweep rows as the benchmarks' fixed-width ASCII table."""
    body: List[List[object]] = []
    for row in rows:
        cells: List[object] = []
        for column in columns:
            if column == "delivered":
                cells.append("yes" if row.get("delivered_everywhere") else "no")
            elif column == "truncated":
                cells.append("yes" if row.get("truncated") else "no")
            elif column == "violations":
                verdicts = row.get("verdicts") or {}
                total = sum(verdicts.values())
                cells.append(total if row.get("status") == "ok" else "-")
            else:
                cells.append(row.get(column, ""))
        body.append(cells)
    return format_table(tuple(columns), body)
