"""Run metrics: the quantities the benchmark harness reports.

Given a :class:`repro.model.RunRecord`, compute per-process step counts,
delivery latencies (multicast round -> delivery round), protocol work
distribution and the genuineness footprint (steps at processes no message
was addressed to).  Also provides a minimal fixed-width table formatter
so every benchmark prints its rows uniformly.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.model.messages import MulticastMessage
from repro.model.processes import ProcessId
from repro.model.runs import RunRecord


@dataclass(frozen=True)
class RunSummary:
    """Aggregated metrics of one run.

    Attributes:
        total_steps: steps across all processes.
        steps_per_process: individual step counts.
        idle_steps: steps charged to processes outside every destination
            group (non-zero only for non-genuine protocols).
        mean_latency: mean rounds from multicast to last correct delivery.
        max_latency: worst such latency.
        deliveries: number of delivery events.
    """

    total_steps: int
    steps_per_process: Mapping[ProcessId, int]
    idle_steps: int
    mean_latency: float
    max_latency: int
    deliveries: int


def latency_of(
    record: RunRecord,
    message: MulticastMessage,
    correct_only: bool = True,
) -> Optional[int]:
    """Rounds from the multicast of ``message`` to its last delivery.

    Uniform Total Order obliges only *correct* members to deliver, so by
    default deliveries at processes that later crash are excluded: a
    faulty member that squeezes a delivery in just before (or long
    after) everyone else would otherwise skew the latency.  Pass
    ``correct_only=False`` to keep every deliverer.
    """
    sent = record.multicast_time(message)
    if sent is None:
        return None
    deliverers = record.delivered_by(message)
    if correct_only:
        deliverers = [p for p in deliverers if record.pattern.is_correct(p)]
    times = [record.delivery_time(p, message) for p in deliverers]
    times = [t for t in times if t is not None]
    if not times:
        return None
    return max(times) - sent


def summarize(record: RunRecord) -> RunSummary:
    """Compute the aggregate metrics of a finished run."""
    steps = record.step_counts()
    addressed = set()
    for m in record.multicast_messages():
        addressed |= set(m.dst)
    idle_steps = sum(
        count for p, count in steps.items() if p not in addressed
    )
    latencies = []
    for m in record.multicast_messages():
        latency = latency_of(record, m)
        if latency is not None:
            latencies.append(latency)
    return RunSummary(
        total_steps=sum(steps.values()),
        steps_per_process=dict(steps),
        idle_steps=idle_steps,
        mean_latency=statistics.mean(latencies) if latencies else 0.0,
        max_latency=max(latencies) if latencies else 0,
        deliveries=len(record.deliveries),
    )


def steps_at(record: RunRecord, processes: Iterable[ProcessId]) -> int:
    """Total steps charged to the given processes."""
    return sum(record.steps_of(p) for p in processes)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a small fixed-width ASCII table (benchmark output).

    Every row must have exactly ``len(headers)`` cells; a ragged row
    raises :class:`ValueError` naming the offending row instead of
    crashing with an :class:`IndexError` (too many cells) or silently
    misaligning the table (too few).
    """
    for index, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {index} has {len(row)} cells, expected "
                f"{len(headers)} (headers: {list(headers)})"
            )
    columns = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                columns[i].append(f"{cell:.2f}")
            else:
                columns[i].append(str(cell))
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header = " | ".join(
        col[0].ljust(width) for col, width in zip(columns, widths)
    )
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for r in range(1, len(columns[0])):
        lines.append(
            " | ".join(
                col[r].ljust(width) for col, width in zip(columns, widths)
            )
        )
    return "\n".join(lines)
