"""Run metrics, per-round trace instrumentation and table formatting."""

from repro.metrics.summary import (
    RunSummary,
    format_table,
    latency_of,
    steps_at,
    summarize,
)
from repro.metrics.sweep import (
    SweepAggregator,
    summarize_rows,
    sweep_table,
)
from repro.metrics.trace import (
    TRACE_SCHEMA_VERSION,
    WAIT_CONSENSUS,
    WAIT_GAMMA,
    WAIT_IDLE,
    WAIT_INDICATOR,
    WAIT_ORDER,
    WAIT_QUORUM,
    RoundTrace,
    TraceRecorder,
    read_jsonl,
)

__all__ = [
    "RunSummary",
    "format_table",
    "latency_of",
    "steps_at",
    "summarize",
    "SweepAggregator",
    "summarize_rows",
    "sweep_table",
    "TRACE_SCHEMA_VERSION",
    "WAIT_CONSENSUS",
    "WAIT_GAMMA",
    "WAIT_IDLE",
    "WAIT_INDICATOR",
    "WAIT_ORDER",
    "WAIT_QUORUM",
    "RoundTrace",
    "TraceRecorder",
    "read_jsonl",
]
