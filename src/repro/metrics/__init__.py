"""Run metrics and benchmark table formatting."""

from repro.metrics.summary import (
    RunSummary,
    format_table,
    latency_of,
    steps_at,
    summarize,
)

__all__ = ["RunSummary", "format_table", "latency_of", "steps_at", "summarize"]
